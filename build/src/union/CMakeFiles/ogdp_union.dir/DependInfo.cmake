
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/union/schema_similarity.cc" "src/union/CMakeFiles/ogdp_union.dir/schema_similarity.cc.o" "gcc" "src/union/CMakeFiles/ogdp_union.dir/schema_similarity.cc.o.d"
  "/root/repo/src/union/union_labels.cc" "src/union/CMakeFiles/ogdp_union.dir/union_labels.cc.o" "gcc" "src/union/CMakeFiles/ogdp_union.dir/union_labels.cc.o.d"
  "/root/repo/src/union/unionable_finder.cc" "src/union/CMakeFiles/ogdp_union.dir/unionable_finder.cc.o" "gcc" "src/union/CMakeFiles/ogdp_union.dir/unionable_finder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/table/CMakeFiles/ogdp_table.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ogdp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/csv/CMakeFiles/ogdp_csv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
