src/union/CMakeFiles/ogdp_union.dir/union_labels.cc.o: \
 /root/repo/src/union/union_labels.cc /usr/include/stdc-predef.h \
 /root/repo/src/union/union_labels.h
