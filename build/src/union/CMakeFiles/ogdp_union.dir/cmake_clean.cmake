file(REMOVE_RECURSE
  "CMakeFiles/ogdp_union.dir/schema_similarity.cc.o"
  "CMakeFiles/ogdp_union.dir/schema_similarity.cc.o.d"
  "CMakeFiles/ogdp_union.dir/union_labels.cc.o"
  "CMakeFiles/ogdp_union.dir/union_labels.cc.o.d"
  "CMakeFiles/ogdp_union.dir/unionable_finder.cc.o"
  "CMakeFiles/ogdp_union.dir/unionable_finder.cc.o.d"
  "libogdp_union.a"
  "libogdp_union.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ogdp_union.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
