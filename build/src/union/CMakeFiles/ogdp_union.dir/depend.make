# Empty dependencies file for ogdp_union.
# This may be replaced when dependencies are built.
