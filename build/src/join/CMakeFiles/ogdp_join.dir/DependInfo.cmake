
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/join/expansion.cc" "src/join/CMakeFiles/ogdp_join.dir/expansion.cc.o" "gcc" "src/join/CMakeFiles/ogdp_join.dir/expansion.cc.o.d"
  "/root/repo/src/join/join_labels.cc" "src/join/CMakeFiles/ogdp_join.dir/join_labels.cc.o" "gcc" "src/join/CMakeFiles/ogdp_join.dir/join_labels.cc.o.d"
  "/root/repo/src/join/joinable_pair_finder.cc" "src/join/CMakeFiles/ogdp_join.dir/joinable_pair_finder.cc.o" "gcc" "src/join/CMakeFiles/ogdp_join.dir/joinable_pair_finder.cc.o.d"
  "/root/repo/src/join/minhash.cc" "src/join/CMakeFiles/ogdp_join.dir/minhash.cc.o" "gcc" "src/join/CMakeFiles/ogdp_join.dir/minhash.cc.o.d"
  "/root/repo/src/join/pair_sampler.cc" "src/join/CMakeFiles/ogdp_join.dir/pair_sampler.cc.o" "gcc" "src/join/CMakeFiles/ogdp_join.dir/pair_sampler.cc.o.d"
  "/root/repo/src/join/suggestion_ranker.cc" "src/join/CMakeFiles/ogdp_join.dir/suggestion_ranker.cc.o" "gcc" "src/join/CMakeFiles/ogdp_join.dir/suggestion_ranker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/table/CMakeFiles/ogdp_table.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ogdp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/csv/CMakeFiles/ogdp_csv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
