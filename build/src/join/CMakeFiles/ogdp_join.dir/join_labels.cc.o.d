src/join/CMakeFiles/ogdp_join.dir/join_labels.cc.o: \
 /root/repo/src/join/join_labels.cc /usr/include/stdc-predef.h \
 /root/repo/src/join/join_labels.h
