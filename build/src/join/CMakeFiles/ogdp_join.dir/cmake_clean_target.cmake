file(REMOVE_RECURSE
  "libogdp_join.a"
)
