# Empty compiler generated dependencies file for ogdp_join.
# This may be replaced when dependencies are built.
