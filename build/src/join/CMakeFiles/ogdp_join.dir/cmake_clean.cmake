file(REMOVE_RECURSE
  "CMakeFiles/ogdp_join.dir/expansion.cc.o"
  "CMakeFiles/ogdp_join.dir/expansion.cc.o.d"
  "CMakeFiles/ogdp_join.dir/join_labels.cc.o"
  "CMakeFiles/ogdp_join.dir/join_labels.cc.o.d"
  "CMakeFiles/ogdp_join.dir/joinable_pair_finder.cc.o"
  "CMakeFiles/ogdp_join.dir/joinable_pair_finder.cc.o.d"
  "CMakeFiles/ogdp_join.dir/minhash.cc.o"
  "CMakeFiles/ogdp_join.dir/minhash.cc.o.d"
  "CMakeFiles/ogdp_join.dir/pair_sampler.cc.o"
  "CMakeFiles/ogdp_join.dir/pair_sampler.cc.o.d"
  "CMakeFiles/ogdp_join.dir/suggestion_ranker.cc.o"
  "CMakeFiles/ogdp_join.dir/suggestion_ranker.cc.o.d"
  "libogdp_join.a"
  "libogdp_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ogdp_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
