# Empty compiler generated dependencies file for ogdp_util.
# This may be replaced when dependencies are built.
