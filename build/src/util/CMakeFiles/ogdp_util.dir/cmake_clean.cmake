file(REMOVE_RECURSE
  "CMakeFiles/ogdp_util.dir/rng.cc.o"
  "CMakeFiles/ogdp_util.dir/rng.cc.o.d"
  "CMakeFiles/ogdp_util.dir/status.cc.o"
  "CMakeFiles/ogdp_util.dir/status.cc.o.d"
  "CMakeFiles/ogdp_util.dir/string_util.cc.o"
  "CMakeFiles/ogdp_util.dir/string_util.cc.o.d"
  "libogdp_util.a"
  "libogdp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ogdp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
