file(REMOVE_RECURSE
  "libogdp_util.a"
)
