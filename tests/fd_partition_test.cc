// Tests for the flat partition substrate behind the FD miners: the
// arena-backed StrippedPartition, the linear-time probe product against
// its hash-based reference, the budgeted partition cache, and the
// miner-level guarantees the substrate must preserve — TANE == FUN on
// wide tables with planted composite keys, byte-identical output at every
// thread count, and budget-independence of the mined results.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "fd/cardinality_engine.h"
#include "fd/fd.h"
#include "fd/fd_miner.h"
#include "fd/partition.h"
#include "table/table.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace ogdp::fd {
namespace {

// Random dense class-id vector: every value in [0, domain).
CardinalityEngine::ClassIds RandomIds(Rng& rng, size_t rows,
                                      uint64_t domain) {
  CardinalityEngine::ClassIds ids(rows);
  for (size_t r = 0; r < rows; ++r) {
    ids[r] = static_cast<uint32_t>(rng.NextBounded(domain));
  }
  return ids;
}

// Naive stripped partition of `ids` for cross-checking the builders.
std::vector<std::vector<uint32_t>> NaiveClasses(
    const CardinalityEngine::ClassIds& ids, uint64_t domain) {
  std::vector<std::vector<uint32_t>> classes(domain);
  for (size_t r = 0; r < ids.size(); ++r) {
    classes[ids[r]].push_back(static_cast<uint32_t>(r));
  }
  std::erase_if(classes,
                [](const std::vector<uint32_t>& c) { return c.size() < 2; });
  std::sort(classes.begin(), classes.end());
  return classes;
}

TEST(PartitionTest, BuildMatchesNaiveGrouping) {
  Rng rng(11);
  for (int it = 0; it < 50; ++it) {
    const size_t rows = 1 + rng.NextBounded(200);
    const uint64_t domain = 1 + rng.NextBounded(20);
    const auto ids = RandomIds(rng, rows, domain);
    StrippedPartition p;
    BuildAttributePartition(ids, domain, &p);
    const auto expected = NaiveClasses(ids, domain);
    EXPECT_EQ(ClassesAsSortedSets(p), expected);
    EXPECT_EQ(p.error, p.covered_rows() - p.num_classes());
    EXPECT_EQ(p.offsets.front(), 0u);
    EXPECT_EQ(p.offsets.back(), p.rows.size());
  }
}

// The probe-table product must agree with the hash-based reference on
// every randomized (parent, attribute) pair — same classes, same error —
// regardless of emission order.
TEST(PartitionTest, ProbeProductMatchesHashReference) {
  Rng rng(22);
  PartitionScratch scratch;  // reused across iterations, as in the miner
  for (int it = 0; it < 80; ++it) {
    const size_t rows = 2 + rng.NextBounded(300);
    const uint64_t base_domain = 1 + rng.NextBounded(12);
    const uint64_t attr_domain = 1 + rng.NextBounded(12);
    const auto base_ids = RandomIds(rng, rows, base_domain);
    const auto attr_ids = RandomIds(rng, rows, attr_domain);

    StrippedPartition parent;
    BuildAttributePartition(base_ids, base_domain, &parent);

    StrippedPartition probe;
    PartitionProduct(parent, attr_ids, attr_domain, scratch, &probe);
    const StrippedPartition hash = ReferenceHashProduct(parent, attr_ids);

    EXPECT_EQ(ClassesAsSortedSets(probe), ClassesAsSortedSets(hash));
    EXPECT_EQ(probe.error, hash.error);
    EXPECT_EQ(probe.offsets.front(), 0u);
    EXPECT_EQ(probe.offsets.back(), probe.rows.size());
  }
}

TEST(PartitionTest, CacheBudgetAndEviction) {
  CardinalityEngine::ClassIds ids = {0, 0, 1, 1, 2, 2, 3, 3};
  StrippedPartition single;
  BuildAttributePartition(ids, 4, &single);

  // Copies allocate exactly-sized buffers, so every copy costs the same.
  StrippedPartition pinned = single;
  StrippedPartition first = single;
  StrippedPartition second = single;
  const size_t pin_cost = pinned.bytes();
  const size_t cost = first.bytes();
  ASSERT_GT(cost, 0u);

  // Budget: the pinned singleton plus ~1.5 composites. Pinned partitions
  // count as live bytes but are never declined or evicted themselves.
  PartitionCache cache(pin_cost + cost + cost / 2);
  cache.PinSingleton(0, std::move(pinned));
  EXPECT_EQ(cache.num_singletons(), 1u);
  EXPECT_NE(cache.Find(SingletonSet(0)), nullptr);

  EXPECT_TRUE(cache.Insert(0b011, std::move(first)));
  EXPECT_FALSE(cache.Insert(0b101, std::move(second)));
  EXPECT_EQ(cache.declined_inserts(), 1u);
  EXPECT_NE(cache.Find(0b011), nullptr);
  EXPECT_EQ(cache.Find(0b101), nullptr);

  const size_t peak_before = cache.peak_bytes();
  EXPECT_GE(peak_before, pin_cost + cost);
  cache.EvictLevel(2);
  EXPECT_EQ(cache.Find(0b011), nullptr);
  EXPECT_NE(cache.Find(SingletonSet(0)), nullptr);  // pinned survives
  EXPECT_EQ(cache.peak_bytes(), peak_before);       // peak is monotone
  EXPECT_EQ(cache.bytes_in_use(), pin_cost);
}

TEST(PartitionTest, RebuildMatchesChainedProducts) {
  Rng rng(33);
  const size_t rows = 120;
  std::vector<CardinalityEngine::ClassIds> attrs;
  std::vector<table::Column> columns;
  for (size_t a = 0; a < 4; ++a) {
    const auto ids = RandomIds(rng, rows, 3);
    table::Column col("c" + std::to_string(a));
    for (uint32_t id : ids) col.AppendCell("v" + std::to_string(id));
    columns.push_back(std::move(col));
    attrs.push_back(ids);
  }
  const table::Table table("t", std::move(columns));
  const CardinalityEngine engine(table);

  PartitionCache cache(0);
  for (size_t a = 0; a < 4; ++a) {
    StrippedPartition p;
    BuildAttributePartition(engine.AttributeClassIds(a),
                            engine.AttributeCardinality(a), &p);
    cache.PinSingleton(a, std::move(p));
  }

  PartitionScratch scratch;
  StrippedPartition rebuilt;
  RebuildPartition(cache, engine, 0b1011, scratch, &rebuilt);

  // Reference: singleton(0) refined by 1 then 3 through the hash product.
  StrippedPartition expected = cache.Singleton(0);
  expected = ReferenceHashProduct(expected, engine.AttributeClassIds(1));
  expected = ReferenceHashProduct(expected, engine.AttributeClassIds(3));
  EXPECT_EQ(ClassesAsSortedSets(rebuilt), ClassesAsSortedSets(expected));
  EXPECT_EQ(rebuilt.error, expected.error);
}

// A wide table (>= 16 columns) with a planted two-attribute key: k0 and
// k1 are jointly unique but individually small-domain, and no other
// column has enough distinct values to be a key on its own.
table::Table WideTableWithPlantedKey(Rng& rng, size_t extra_columns,
                                     const std::string& name) {
  const size_t groups = 8;
  const size_t rows = groups * 7;  // k0 in [0,7), k1 in [0,8)
  std::vector<table::Column> columns;
  table::Column k0("k0");
  table::Column k1("k1");
  for (size_t r = 0; r < rows; ++r) {
    k0.AppendCell("a" + std::to_string(r / groups));
    k1.AppendCell("b" + std::to_string(r % groups));
  }
  columns.push_back(std::move(k0));
  columns.push_back(std::move(k1));
  for (size_t c = 0; c < extra_columns; ++c) {
    table::Column col("x" + std::to_string(c));
    if (rng.NextBool(0.3) && c > 0) {
      // Derived column: a function of the previous extra column, planting
      // a guaranteed FD deep in the lattice.
      const table::Column& src = columns.back();
      for (size_t r = 0; r < rows; ++r) {
        col.AppendCell("f" + std::to_string(src.ValueAt(r).size() % 3));
      }
    } else {
      for (size_t r = 0; r < rows; ++r) {
        col.AppendCell("v" + std::to_string(rng.NextBounded(3)));
      }
    }
    columns.push_back(std::move(col));
  }
  return table::Table(name, std::move(columns));
}

TEST(FdWideTableTest, TaneAndFunAgreeWithPlantedCompositeKey) {
  Rng rng(44);
  for (int it = 0; it < 4; ++it) {
    const table::Table table =
        WideTableWithPlantedKey(rng, 15, "wide_" + std::to_string(it));
    ASSERT_GE(table.num_columns(), 16u);

    FdMinerOptions options;
    options.max_lhs = 3;  // keeps the 17-column lattice test-sized
    auto tane = MineTane(table, options);
    auto fun = MineFun(table, options);
    ASSERT_TRUE(tane.ok()) << tane.status();
    ASSERT_TRUE(fun.ok()) << fun.status();

    // Identical content *and* identical order: both miners emit the
    // canonical (size, set, rhs) order, so the vectors match directly.
    EXPECT_EQ(tane->fds, fun->fds);
    EXPECT_EQ(tane->candidate_keys, fun->candidate_keys);
    EXPECT_TRUE(std::is_sorted(tane->fds.begin(), tane->fds.end(),
                               FdOutputLess));
    EXPECT_TRUE(std::is_sorted(tane->candidate_keys.begin(),
                               tane->candidate_keys.end(), KeyOutputLess));

    // {k0, k1} is a superkey and neither singleton is unique, so it must
    // be reported as a minimal candidate key by both miners.
    const AttributeSet planted = Add(SingletonSet(0), 1);
    EXPECT_NE(std::find(tane->candidate_keys.begin(),
                        tane->candidate_keys.end(), planted),
              tane->candidate_keys.end())
        << "planted key missing in " << table.name();

    for (const FunctionalDependency& dep : tane->fds) {
      EXPECT_TRUE(FdHolds(table, dep)) << dep.ToString();
    }
  }
}

// The canonical comparators order by ascending LHS size first — the
// output contract both miners and the key finder share.
TEST(FdOrderingTest, CanonicalComparators) {
  const FunctionalDependency small{SingletonSet(3), 0};
  const FunctionalDependency big{Add(SingletonSet(0), 1), 0};
  EXPECT_TRUE(FdOutputLess(small, big));   // size beats set value
  EXPECT_FALSE(FdOutputLess(big, small));
  EXPECT_TRUE(FdOutputLess(FunctionalDependency{SingletonSet(1), 0},
                           FunctionalDependency{SingletonSet(1), 2}));
  EXPECT_TRUE(KeyOutputLess(SingletonSet(5), Add(SingletonSet(0), 1)));
  EXPECT_FALSE(KeyOutputLess(Add(SingletonSet(0), 1), SingletonSet(5)));
}

struct MinedPair {
  FdMineResult tane;
  FdMineResult fun;
};

MinedPair MineBoth(const table::Table& table, const FdMinerOptions& options) {
  auto tane = MineTane(table, options);
  auto fun = MineFun(table, options);
  EXPECT_TRUE(tane.ok()) << tane.status();
  EXPECT_TRUE(fun.ok()) << fun.status();
  return MinedPair{std::move(tane).value(), std::move(fun).value()};
}

// Results — FDs, keys, and nodes_explored — must be byte-identical at
// every thread count (DESIGN.md's determinism discipline).
TEST(FdDeterminismTest, ThreadCountDoesNotChangeResults) {
  Rng rng(55);
  const table::Table wide = WideTableWithPlantedKey(rng, 14, "threads");
  FdMinerOptions options;
  options.max_lhs = 3;

  const size_t restore = util::GlobalThreadCount();
  util::SetGlobalThreadCount(1);
  const MinedPair serial = MineBoth(wide, options);
  for (size_t threads : {2u, 8u}) {
    util::SetGlobalThreadCount(threads);
    const MinedPair parallel = MineBoth(wide, options);
    EXPECT_EQ(parallel.tane.fds, serial.tane.fds) << threads << " threads";
    EXPECT_EQ(parallel.tane.candidate_keys, serial.tane.candidate_keys);
    EXPECT_EQ(parallel.tane.nodes_explored, serial.tane.nodes_explored);
    EXPECT_EQ(parallel.fun.fds, serial.fun.fds) << threads << " threads";
    EXPECT_EQ(parallel.fun.candidate_keys, serial.fun.candidate_keys);
    EXPECT_EQ(parallel.fun.nodes_explored, serial.fun.nodes_explored);
  }
  util::SetGlobalThreadCount(restore);
}

// A partition budget too small to retain any composite partition forces
// the rebuild path; the mined output must not change, only the stats.
TEST(FdDeterminismTest, TinyPartitionBudgetOnlyChangesStats) {
  Rng rng(66);
  const table::Table wide = WideTableWithPlantedKey(rng, 10, "budget");

  FdMinerOptions unlimited;
  unlimited.max_lhs = 3;
  unlimited.partition_budget_bytes = 0;
  FdMinerOptions tiny = unlimited;
  tiny.partition_budget_bytes = 1;

  auto full = MineTane(wide, unlimited);
  auto squeezed = MineTane(wide, tiny);
  ASSERT_TRUE(full.ok()) << full.status();
  ASSERT_TRUE(squeezed.ok()) << squeezed.status();

  EXPECT_EQ(squeezed->fds, full->fds);
  EXPECT_EQ(squeezed->candidate_keys, full->candidate_keys);
  EXPECT_EQ(squeezed->nodes_explored, full->nodes_explored);
  EXPECT_EQ(full->stats.partition_rebuilds, 0u);
  // Level-3+ candidates have composite parents, none of which were
  // retained under the 1-byte budget.
  EXPECT_GT(squeezed->stats.partition_rebuilds, 0u);
  EXPECT_LT(squeezed->stats.peak_partition_bytes,
            full->stats.peak_partition_bytes);
}

// ------------------------------------------------ memory governor tests

TEST(MemoryGovernorTest, PoolAccountingAndDeclines) {
  MemoryGovernor pool(100);
  EXPECT_EQ(pool.budget_bytes(), 100u);
  EXPECT_TRUE(pool.TryReserve(60));
  EXPECT_TRUE(pool.TryReserve(40));
  EXPECT_FALSE(pool.TryReserve(1));  // full
  EXPECT_EQ(pool.declined_reserves(), 1u);
  EXPECT_EQ(pool.bytes_in_use(), 100u);
  pool.Release(40);
  EXPECT_EQ(pool.bytes_in_use(), 60u);
  // Must-keep reservations push past the budget instead of failing.
  pool.ForceReserve(80);
  EXPECT_EQ(pool.bytes_in_use(), 140u);
  EXPECT_EQ(pool.peak_bytes(), 140u);
  pool.NoteTransient(100);
  EXPECT_EQ(pool.peak_bytes(), 240u);  // transient counts toward the peak
  EXPECT_EQ(pool.bytes_in_use(), 140u);  // ... but is not held

  MemoryGovernor unlimited(0);
  EXPECT_TRUE(unlimited.TryReserve(size_t{1} << 40));
  EXPECT_EQ(unlimited.declined_reserves(), 0u);
}

TEST(MemoryGovernorTest, LeaseReturnsBytesOnDestruction) {
  MemoryGovernor pool(1000);
  {
    MemoryLease lease(&pool);
    EXPECT_TRUE(lease.TryCharge(600));
    lease.ForceCharge(300);
    EXPECT_EQ(lease.charged_bytes(), 900u);
    EXPECT_FALSE(lease.TryCharge(200));  // pool has only 100 left
    EXPECT_EQ(lease.declines(), 1u);
    lease.Release(400);
    EXPECT_EQ(lease.charged_bytes(), 500u);
    EXPECT_EQ(pool.bytes_in_use(), 500u);
  }
  EXPECT_EQ(pool.bytes_in_use(), 0u);  // destructor returned the rest
  EXPECT_EQ(pool.peak_bytes(), 900u);

  // A lease without a governor is unlimited but still tracks local stats.
  MemoryLease standalone;
  EXPECT_TRUE(standalone.TryCharge(size_t{1} << 40));
  EXPECT_EQ(standalone.peak_bytes(), size_t{1} << 40);
  EXPECT_EQ(standalone.declines(), 0u);
}

TEST(MemoryGovernorTest, BudgetResolution) {
  // Default: 32 bytes/cell clamped to [64 MiB, 4 GiB].
  const size_t mib = size_t{1} << 20;
  EXPECT_EQ(DefaultFdMemoryBudget(0), 64 * mib);
  EXPECT_EQ(DefaultFdMemoryBudget(100), 64 * mib);  // floor
  EXPECT_EQ(DefaultFdMemoryBudget(8 * mib), 256 * mib);
  EXPECT_EQ(DefaultFdMemoryBudget(uint64_t{1} << 40), 4096 * mib);  // ceil

  // Env parsing, exercised through ResolveFdMemoryBudget.
  ::setenv("OGDP_FD_MEM_BUDGET", "128M", 1);
  EXPECT_EQ(ResolveFdMemoryBudget(0, 0), 128 * mib);
  ::setenv("OGDP_FD_MEM_BUDGET", "2g", 1);
  EXPECT_EQ(ResolveFdMemoryBudget(0, 0), 2048 * mib);
  ::setenv("OGDP_FD_MEM_BUDGET", "512k", 1);
  EXPECT_EQ(ResolveFdMemoryBudget(0, 0), 512 * 1024u);
  ::setenv("OGDP_FD_MEM_BUDGET", "unlimited", 1);
  EXPECT_EQ(ResolveFdMemoryBudget(0, 0), 0u);
  ::setenv("OGDP_FD_MEM_BUDGET", "12junk", 1);  // malformed: ignored
  EXPECT_EQ(ResolveFdMemoryBudget(0, 0), 64 * mib);
  // An explicit override beats the env; the unlimited sentinel maps to 0.
  ::setenv("OGDP_FD_MEM_BUDGET", "128M", 1);
  EXPECT_EQ(ResolveFdMemoryBudget(999, 0), 999u);
  EXPECT_EQ(ResolveFdMemoryBudget(kUnlimitedFdMemoryBudget, 0), 0u);
  ::unsetenv("OGDP_FD_MEM_BUDGET");
  EXPECT_EQ(ResolveFdMemoryBudget(0, 0), 64 * mib);
}

// The ISSUE's acceptance sweep: mined output must be byte-identical at
// every governor budget x thread count combination. The 1-byte pool
// declines every declinable retention, the default is the corpus-derived
// policy, and 0 is unlimited.
TEST(FdDeterminismTest, GovernorBudgetsAndThreadsDoNotChangeResults) {
  Rng rng(77);
  const table::Table wide = WideTableWithPlantedKey(rng, 12, "governed");
  FdMinerOptions options;
  options.max_lhs = 3;

  const size_t restore = util::GlobalThreadCount();
  util::SetGlobalThreadCount(1);
  const MinedPair baseline = MineBoth(wide, options);

  const uint64_t cells =
      static_cast<uint64_t>(wide.num_rows()) * wide.num_columns();
  const size_t budgets[] = {1, DefaultFdMemoryBudget(cells), 0};
  for (size_t budget : budgets) {
    for (size_t threads : {1u, 2u, 8u}) {
      util::SetGlobalThreadCount(threads);
      MemoryGovernor pool(budget);
      FdMinerOptions governed = options;
      governed.memory_governor = &pool;
      const MinedPair run = MineBoth(wide, governed);
      EXPECT_EQ(run.tane.fds, baseline.tane.fds)
          << "budget " << budget << ", " << threads << " threads";
      EXPECT_EQ(run.tane.candidate_keys, baseline.tane.candidate_keys);
      EXPECT_EQ(run.tane.nodes_explored, baseline.tane.nodes_explored);
      EXPECT_EQ(run.fun.fds, baseline.fun.fds)
          << "budget " << budget << ", " << threads << " threads";
      EXPECT_EQ(run.fun.candidate_keys, baseline.fun.candidate_keys);
      EXPECT_EQ(run.fun.nodes_explored, baseline.fun.nodes_explored);
      EXPECT_EQ(run.tane.stats.governor_budget_bytes, budget);
    }
  }
  util::SetGlobalThreadCount(restore);
}

// Under a 1-byte global pool every declinable retention is refused: both
// miners must report declines, fall back to rebuilds, and still finish
// with full results.
TEST(FdDeterminismTest, TinyGovernorBudgetForcesRebuildsAndCompletes) {
  Rng rng(88);
  const table::Table wide = WideTableWithPlantedKey(rng, 10, "squeezed");
  FdMinerOptions options;
  options.max_lhs = 3;

  MemoryGovernor pool(1);
  FdMinerOptions governed = options;
  governed.memory_governor = &pool;

  auto tane = MineTane(wide, governed);
  auto fun = MineFun(wide, governed);
  ASSERT_TRUE(tane.ok()) << tane.status();
  ASSERT_TRUE(fun.ok()) << fun.status();

  EXPECT_GT(tane->stats.partition_declines, 0u);
  EXPECT_GT(tane->stats.partition_rebuilds, 0u);
  EXPECT_GT(fun->stats.partition_declines, 0u);
  EXPECT_GT(fun->stats.partition_rebuilds, 0u);
  // Must-keep charges (engine ids, pinned singletons) land even when the
  // pool is over budget, so the global peak exceeds the 1-byte budget.
  EXPECT_GT(pool.peak_bytes(), pool.budget_bytes());
  EXPECT_FALSE(tane->fds.empty() && tane->candidate_keys.empty());
  EXPECT_EQ(tane->fds, fun->fds);
  EXPECT_EQ(tane->candidate_keys, fun->candidate_keys);
}

}  // namespace
}  // namespace ogdp::fd
