// Tests for descriptive statistics, histograms, and letter-value
// summaries.

#include <gtest/gtest.h>

#include "stats/descriptive.h"
#include "stats/histogram.h"
#include "stats/letter_values.h"
#include "util/rng.h"

namespace ogdp::stats {
namespace {

TEST(DescriptiveTest, MeanAndStdDev) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({2, 4, 6}), 4.0);
  EXPECT_DOUBLE_EQ(StdDev({5}), 0.0);
  EXPECT_NEAR(StdDev({2, 4, 4, 4, 5, 5, 7, 9}), 2.138, 1e-3);
}

TEST(DescriptiveTest, QuantileInterpolation) {
  std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 1.75);  // type-7
  EXPECT_DOUBLE_EQ(Median({9, 1, 5}), 5.0);
  EXPECT_DOUBLE_EQ(Quantile({}, 0.5), 0.0);
}

TEST(DescriptiveTest, QuantileUnsortedInput) {
  EXPECT_DOUBLE_EQ(Quantile({4, 1, 3, 2}, 0.5), 2.5);
}

TEST(DescriptiveTest, Summarize) {
  Summary s = Summarize({3, 1, 2, 100});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 100);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.sum, 106);
  EXPECT_DOUBLE_EQ(s.mean, 26.5);
  // Heavy tail: mean far above median, the Table 2 shape.
  EXPECT_GT(s.mean, s.median);
}

TEST(DescriptiveTest, DecileStringHasTenEntries) {
  std::string d = DecileString({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  EXPECT_NE(d.find("p10="), std::string::npos);
  EXPECT_NE(d.find("p100=10"), std::string::npos);
}

TEST(HistogramTest, LinearBinning) {
  Histogram h = Histogram::Linear(0, 10, 5);
  h.AddAll({0, 1.9, 2, 5, 9.99, -1, 10, 100});
  EXPECT_EQ(h.num_bins(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);  // 0, 1.9
  EXPECT_EQ(h.bin_count(1), 1u);  // 2
  EXPECT_EQ(h.bin_count(2), 1u);  // 5
  EXPECT_EQ(h.bin_count(4), 1u);  // 9.99
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);  // 10 (right-open), 100
  EXPECT_EQ(h.total(), 8u);
}

TEST(HistogramTest, LogBinning) {
  Histogram h = Histogram::Logarithmic(1, 1000, 3);
  h.AddAll({1, 5, 50, 500});
  EXPECT_EQ(h.bin_count(0), 2u);   // [1, 10)
  EXPECT_EQ(h.bin_count(1), 1u);   // [10, 100)
  EXPECT_EQ(h.bin_count(2), 1u);   // [100, 1000)
}

TEST(HistogramTest, RenderContainsBars) {
  Histogram h = Histogram::Linear(0, 2, 2);
  h.AddAll({0.5, 0.6, 1.5});
  const std::string s = h.ToString(10);
  EXPECT_NE(s.find('#'), std::string::npos);
  EXPECT_NE(s.find("2"), std::string::npos);
}

TEST(LetterValuesTest, MedianAndBoxes) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  LetterValueSummary s = ComputeLetterValues(v);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.median, 50.5);
  ASSERT_GE(s.levels.size(), 2u);
  EXPECT_NEAR(s.levels[0].lower, 25.75, 0.01);  // quartiles
  EXPECT_NEAR(s.levels[0].upper, 75.25, 0.01);
  EXPECT_LT(s.levels[1].lower, s.levels[0].lower);  // eighths widen
  EXPECT_GT(s.levels[1].upper, s.levels[0].upper);
}

TEST(LetterValuesTest, StoppingRule) {
  // 16 points with min_tail 5: only the quartile box qualifies
  // (16 * 0.25 = 4 < 5 stops immediately at level 0? 4 < 5, so none).
  std::vector<double> v;
  for (int i = 0; i < 16; ++i) v.push_back(i);
  EXPECT_TRUE(ComputeLetterValues(v, 5).levels.empty());
  EXPECT_EQ(ComputeLetterValues(v, 4).levels.size(), 1u);
}

TEST(LetterValuesTest, EmptyAndRender) {
  LetterValueSummary s = ComputeLetterValues({});
  EXPECT_EQ(s.count, 0u);
  std::vector<double> v;
  for (int i = 0; i < 200; ++i) v.push_back(i);
  const std::string text = ComputeLetterValues(v).ToString();
  EXPECT_NE(text.find("median="), std::string::npos);
  EXPECT_NE(text.find("F=["), std::string::npos);
}

TEST(LetterValuesTest, NestedInvariantProperty) {
  // Boxes must nest for any sample.
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> v;
    const size_t n = 50 + rng.NextBounded(500);
    for (size_t i = 0; i < n; ++i) {
      v.push_back(rng.NextLognormal(2.0, 1.5));
    }
    LetterValueSummary s = ComputeLetterValues(v);
    for (size_t k = 1; k < s.levels.size(); ++k) {
      EXPECT_LE(s.levels[k].lower, s.levels[k - 1].lower);
      EXPECT_GE(s.levels[k].upper, s.levels[k - 1].upper);
    }
    if (!s.levels.empty()) {
      EXPECT_LE(s.levels[0].lower, s.median);
      EXPECT_GE(s.levels[0].upper, s.median);
    }
  }
}

}  // namespace
}  // namespace ogdp::stats
