// Tests for the signal-based join-suggestion ranker.

#include <gtest/gtest.h>

#include "join/suggestion_ranker.h"
#include "table/table.h"

namespace ogdp::join {
namespace {

using table::DataType;

SuggestionSignals BaseSignals() {
  SuggestionSignals s;
  s.jaccard = 0.95;
  s.same_dataset = false;
  s.key_combo = KeyCombination::kNonkeyNonkey;
  s.join_type = DataType::kCategorical;
  s.expansion_ratio = 1.0;
  return s;
}

TEST(ScoreSuggestionTest, PaperSignalOrdering) {
  // Each paper signal moves the score the right way.
  SuggestionSignals base = BaseSignals();
  const double base_score = ScoreSuggestion(base);

  SuggestionSignals same_ds = base;
  same_ds.same_dataset = true;
  EXPECT_GT(ScoreSuggestion(same_ds), base_score);  // Table 8

  SuggestionSignals key_key = base;
  key_key.key_combo = KeyCombination::kKeyKey;
  SuggestionSignals key_nonkey = base;
  key_nonkey.key_combo = KeyCombination::kKeyNonkey;
  EXPECT_GT(ScoreSuggestion(key_key), ScoreSuggestion(key_nonkey));
  EXPECT_GT(ScoreSuggestion(key_nonkey), base_score);  // Table 9

  SuggestionSignals incremental = base;
  incremental.join_type = DataType::kIncrementalInteger;
  EXPECT_LT(ScoreSuggestion(incremental), base_score);  // Table 10

  SuggestionSignals growing = base;
  growing.expansion_ratio = 50.0;
  EXPECT_LT(ScoreSuggestion(growing), base_score);  // sec 5.2
}

TEST(ScoreSuggestionTest, BoundedAndMonotoneInJaccard) {
  SuggestionSignals s = BaseSignals();
  for (double j : {0.0, 0.5, 0.9, 1.0}) {
    s.jaccard = j;
    const double score = ScoreSuggestion(s);
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0);
  }
  SuggestionSignals lo = BaseSignals(), hi = BaseSignals();
  lo.jaccard = 0.9;
  hi.jaccard = 1.0;
  EXPECT_LT(ScoreSuggestion(lo), ScoreSuggestion(hi));
}

TEST(PreferredJoinTypeTest, SignalRankingAndTies) {
  // Incremental-integer dominates from either side.
  EXPECT_EQ(PreferredJoinType(DataType::kIncrementalInteger,
                              DataType::kCategorical),
            DataType::kIncrementalInteger);
  EXPECT_EQ(PreferredJoinType(DataType::kCategorical,
                              DataType::kIncrementalInteger),
            DataType::kIncrementalInteger);
  // Stronger Table-10 signal wins regardless of order.
  EXPECT_EQ(PreferredJoinType(DataType::kTimestamp, DataType::kString),
            DataType::kString);
  EXPECT_EQ(PreferredJoinType(DataType::kString, DataType::kTimestamp),
            DataType::kString);
  EXPECT_EQ(PreferredJoinType(DataType::kInteger, DataType::kTimestamp),
            DataType::kTimestamp);
  // Equal-signal ties resolve to one fixed choice, both orientations.
  EXPECT_EQ(PreferredJoinType(DataType::kCategorical, DataType::kString),
            PreferredJoinType(DataType::kString, DataType::kCategorical));
}

TEST(ExtractSignalsTest, OrientationInvariant) {
  // Regression: the join-type signal used to copy the first side's type
  // (unless either side was incremental-integer), so the same discovered
  // pair scored differently depending on which side the finder listed
  // first — (timestamp, categorical) mapped to timestamp, its mirror to
  // categorical.
  std::vector<table::Table> tables;
  auto push = [&](const std::string& name, const std::string& dataset) {
    auto t = table::Table::FromRecords(name, {"c"}, {{"x"}});
    t->set_dataset_id(dataset);
    tables.push_back(std::move(t).value());
  };
  push("t0", "ds1");
  push("t1", "ds2");

  ColumnValueSet when;
  when.ref = ColumnRef{0, 0};
  when.type = DataType::kTimestamp;
  when.is_key = true;
  when.table_rows = 20;
  ColumnValueSet species = when;
  species.ref = ColumnRef{1, 0};
  species.type = DataType::kCategorical;
  species.is_key = false;

  const SuggestionSignals ab = ExtractSignals(tables, when, species, 0.95);
  const SuggestionSignals ba = ExtractSignals(tables, species, when, 0.95);
  EXPECT_EQ(ab.join_type, ba.join_type);
  EXPECT_EQ(ab.join_type, DataType::kCategorical);  // stronger signal wins
  EXPECT_EQ(ab.key_combo, ba.key_combo);
  EXPECT_EQ(ab.expansion_ratio, ba.expansion_ratio);
  EXPECT_EQ(ScoreSuggestion(ab), ScoreSuggestion(ba));

  // The incremental-integer red flag still dominates from either side.
  ColumnValueSet row_id = when;
  row_id.type = DataType::kIncrementalInteger;
  EXPECT_EQ(ExtractSignals(tables, row_id, species, 0.95).join_type,
            DataType::kIncrementalInteger);
  EXPECT_EQ(ExtractSignals(tables, species, row_id, 0.95).join_type,
            DataType::kIncrementalInteger);
}

TEST(RankSuggestionsTest, BestPairFirstAndDeterministic) {
  // Two tables joinable on a key pair (same dataset) and two on an
  // incremental-id pair (different datasets): the former must rank first.
  std::vector<table::Table> tables;
  auto make = [&](const std::string& name, const std::string& dataset,
                  const std::string& col, int lo, int hi, bool categorical) {
    std::vector<std::vector<std::string>> rows;
    for (int i = lo; i <= hi; ++i) {
      rows.push_back(
          {categorical ? "cat" + std::to_string(i) : std::to_string(i)});
    }
    auto t = table::Table::FromRecords(name, {col}, rows);
    t->set_dataset_id(dataset);
    tables.push_back(std::move(t).value());
  };
  make("a", "ds1", "species", 1, 20, true);
  make("b", "ds1", "species_ref", 1, 20, true);
  make("c", "ds2", "row_id", 1, 25, false);
  make("d", "ds3", "objectid", 1, 25, false);

  JoinablePairFinder finder(tables);
  auto pairs = finder.FindAllPairs();
  ASSERT_EQ(pairs.size(), 2u);
  auto ranked = RankSuggestions(tables, finder, pairs);
  ASSERT_EQ(ranked.size(), 2u);
  const auto& top = pairs[ranked[0].pair_index];
  EXPECT_EQ(top.a.table, 0u);  // the species pair
  EXPECT_EQ(top.b.table, 1u);
  EXPECT_GT(ranked[0].score, ranked[1].score);

  auto again = RankSuggestions(tables, finder, pairs);
  for (size_t i = 0; i < ranked.size(); ++i) {
    EXPECT_EQ(ranked[i].pair_index, again[i].pair_index);
  }
}

}  // namespace
}  // namespace ogdp::join
