// Tests for the content-addressed analysis cache and the incremental
// re-analysis runner: byte-identity with the from-scratch pipeline,
// reuse accounting, decline degradation, and churn edge cases.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/analysis_cache.h"
#include "core/analysis_suite.h"
#include "core/incremental.h"
#include "core/ingestion.h"
#include "core/portal_model.h"
#include "corpus/snapshot.h"
#include "fd/memory_governor.h"
#include "fetch/fault_schedule.h"

namespace ogdp::core {
namespace {

// A small fixed portal whose tables land in the FD sample and produce
// joinable pairs (shared record_id value sets across datasets).
corpus::PortalSnapshot MakeSnapshot() {
  corpus::PortalSnapshot snap;
  snap.portal.name = "inc";
  for (int d = 0; d < 3; ++d) {
    core::Dataset ds;
    ds.id = "ds" + std::to_string(d);
    for (int r = 0; r < 2; ++r) {
      core::Resource res;
      res.name = "t" + std::to_string(d) + std::to_string(r) + ".csv";
      res.claimed_format = "CSV";
      // 5 columns x 24 rows: inside the FD sample window, record_id
      // joinable across tables.
      std::string doc = "record_id,region,period,code,value\n";
      for (int i = 0; i < 24; ++i) {
        doc += std::to_string(i) + ",g" + std::to_string(i % 4) + ",m" +
               std::to_string(i % 12) + ",c" +
               std::to_string((i * 7 + d) % 40) + "," +
               std::to_string(100 * d + 10 * r + i) + "\n";
      }
      res.content = std::move(doc);
      ds.resources.push_back(std::move(res));
    }
    snap.portal.datasets.push_back(std::move(ds));
  }
  return snap;
}

AnalysisSuiteOptions SuiteOptions() {
  AnalysisSuiteOptions suite;
  // Unlimited FD budget keeps replayed governor telemetry content-pure.
  suite.fd_memory_budget_bytes = fd::kUnlimitedFdMemoryBudget;
  return suite;
}

IngestOptions EnvProofIngest() {
  IngestOptions ingest;
  ingest.faults = fetch::FaultProfile{};  // explicit: env-proof
  return ingest;
}

PortalAnalysis ScratchAnalysis(const corpus::PortalSnapshot& snap) {
  PortalBundle bundle;
  bundle.name = snap.portal.name;
  bundle.portal = snap.portal;
  bundle.truth = snap.truth;
  bundle.ingest = IngestPortal(snap.portal, EnvProofIngest());
  return RunFullAnalysis(bundle, SuiteOptions());
}

corpus::ChurnProfile NoChurn() {
  corpus::ChurnProfile churn;
  churn.dataset_add_rate = 0;
  churn.dataset_remove_rate = 0;
  churn.resource_update_rate = 0;
  churn.resource_rename_rate = 0;
  return churn;
}

TEST(AnalysisCacheTest, FdArtifactRoundTrip) {
  AnalysisCache cache(fd::kUnlimitedFdMemoryBudget);
  const uint64_t key = FdCacheKey(0x1234, /*seed=*/7);
  EXPECT_EQ(cache.FindFd(key), nullptr);
  EXPECT_EQ(cache.stats().fd.misses, 1u);

  FdArtifact art;
  art.mined = true;
  art.has_fd = true;
  art.decomp_count = 3;
  art.compute_seconds = 0.5;
  cache.StoreFd(key, art);
  const auto hit = cache.FindFd(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->decomp_count, 3u);
  EXPECT_TRUE(hit->has_fd);
  EXPECT_EQ(cache.stats().fd.hits, 1u);
  EXPECT_EQ(cache.stats().fd.stores, 1u);
  EXPECT_DOUBLE_EQ(cache.stats().fd.saved_seconds, 0.5);
}

TEST(AnalysisCacheTest, OneByteBudgetDeclinesEveryStore) {
  AnalysisCache cache(1);
  FdArtifact art;
  art.mined = true;
  cache.StoreFd(FdCacheKey(0x1234, 7), art);
  EXPECT_EQ(cache.FindFd(FdCacheKey(0x1234, 7)), nullptr);
  EXPECT_GE(cache.stats().fd.declines, 1u);
  EXPECT_EQ(cache.stats().fd.stores, 0u);
}

TEST(AnalysisCacheStressTest, ConcurrentMixedTrafficKeepsStatsConserved) {
  // Regression for the racy stats bump: lookups and hits/misses (and store
  // attempts vs stores/declines/duplicates) were counted under separate
  // lock acquisitions, so concurrent traffic could violate the
  // conservation laws the stats documentation promises.
  for (const size_t budget : {fd::kUnlimitedFdMemoryBudget, size_t{1}}) {
    // Empty cache_dir: durability explicitly off, env-proof.
    AnalysisCache cache(budget, std::string(), StorageFaultProfile{});
    constexpr size_t kThreads = 8;
    constexpr size_t kIters = 400;
    constexpr uint64_t kKeySpace = 32;  // small: forces races on one key
    std::atomic<size_t> store_attempts{0};

    std::vector<std::thread> workers;
    for (size_t t = 0; t < kThreads; ++t) {
      workers.emplace_back([&cache, &store_attempts, t] {
        for (size_t i = 0; i < kIters; ++i) {
          const uint64_t key = FdCacheKey((t * kIters + i) % kKeySpace, 7);
          if (cache.FindFd(key) == nullptr) {
            FdArtifact art;
            art.mined = true;
            art.decomp_count = 1 + (key % 3);
            cache.StoreFd(key, art);
            store_attempts.fetch_add(1, std::memory_order_relaxed);
          }
          KeyArtifact key_art;
          key_art.outcome = 1;
          cache.FindKeys(KeyCacheKey(key));
          cache.StoreKeys(KeyCacheKey(key), key_art);
          store_attempts.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (auto& w : workers) w.join();

    const AnalysisCacheStats stats = cache.stats();
    for (const CacheKindStats* kind : {&stats.fd, &stats.keys}) {
      EXPECT_EQ(kind->hits + kind->misses, kind->lookups);
    }
    EXPECT_EQ(stats.fd.lookups + stats.keys.lookups, 2 * kThreads * kIters);
    EXPECT_EQ(stats.fd.stores + stats.fd.declines + stats.fd.duplicate_stores +
                  stats.keys.stores + stats.keys.declines +
                  stats.keys.duplicate_stores,
              store_attempts.load());
    if (budget == 1) {
      // The 1-byte governor refuses everything; nothing is ever resident.
      EXPECT_EQ(stats.fd.stores, 0u);
      EXPECT_EQ(stats.fd.hits, 0u);
    } else {
      // Each key is stored at most once; racing stores lose as duplicates.
      EXPECT_EQ(stats.fd.stores + stats.keys.stores, 2 * kKeySpace);
      EXPECT_GT(stats.fd.hits, 0u);
    }
  }
}

TEST(IncrementalTest, FirstEpochMatchesScratchAndCountsAllDirty) {
  const corpus::PortalSnapshot snap = MakeSnapshot();
  IncrementalState state(fd::kUnlimitedFdMemoryBudget);
  const IncrementalResult inc =
      RunIncrementalAnalysis(state, snap, SuiteOptions(), EnvProofIngest());

  EXPECT_EQ(RenderPortalAnalysis(inc.analysis),
            RenderPortalAnalysis(ScratchAnalysis(snap)));
  EXPECT_EQ(inc.stats.tables_total, 6u);
  EXPECT_EQ(inc.stats.tables_clean, 0u);
  EXPECT_EQ(inc.stats.tables_dirty, 6u);
  EXPECT_EQ(inc.stats.fd_reused, 0u);
  EXPECT_EQ(inc.stats.pairs_carried, 0u);
  EXPECT_EQ(inc.stats.resources_added, 6u);  // first epoch: all new
}

TEST(IncrementalTest, UnchangedEpochReusesEverything) {
  corpus::PortalSnapshot snap = MakeSnapshot();
  IncrementalState state(fd::kUnlimitedFdMemoryBudget);
  RunIncrementalAnalysis(state, snap, SuiteOptions(), EnvProofIngest());

  snap = corpus::AdvanceEpoch(snap, NoChurn(), 1);
  const IncrementalResult inc =
      RunIncrementalAnalysis(state, snap, SuiteOptions(), EnvProofIngest());

  EXPECT_EQ(RenderPortalAnalysis(inc.analysis),
            RenderPortalAnalysis(ScratchAnalysis(snap)));
  EXPECT_EQ(inc.stats.resources_unchanged, 6u);
  EXPECT_EQ(inc.stats.tables_clean, 6u);
  EXPECT_EQ(inc.stats.tables_dirty, 0u);
  // Nothing recomputed: parse, keys, FDs, and fingerprints all replay,
  // and the whole joinable-pair index carries over.
  EXPECT_EQ(inc.stats.parse_reused, 6u);
  EXPECT_EQ(inc.stats.parse_recomputed, 0u);
  EXPECT_EQ(inc.stats.keys_recomputed, 0u);
  EXPECT_EQ(inc.stats.fd_recomputed, 0u);
  EXPECT_EQ(inc.stats.keys_reused, 6u);
  EXPECT_EQ(inc.stats.fd_reused, 6u);
  EXPECT_EQ(inc.stats.pairs_recomputed, 0u);
  EXPECT_EQ(inc.stats.pairs_carried, inc.analysis.joins.total_pairs);
  EXPECT_GT(inc.stats.pairs_carried, 0u);  // the fixture must be joinable
  EXPECT_GT(inc.stats.saved_fd_seconds, 0.0);
}

TEST(IncrementalTest, FullChurnMatchesScratchWithNothingClean) {
  corpus::PortalSnapshot snap = MakeSnapshot();
  IncrementalState state(fd::kUnlimitedFdMemoryBudget);
  RunIncrementalAnalysis(state, snap, SuiteOptions(), EnvProofIngest());

  corpus::ChurnProfile churn = NoChurn();
  churn.resource_update_rate = 1.0;  // 100% churn: every resource changes
  snap = corpus::AdvanceEpoch(snap, churn, 1);
  const IncrementalResult inc =
      RunIncrementalAnalysis(state, snap, SuiteOptions(), EnvProofIngest());

  EXPECT_EQ(RenderPortalAnalysis(inc.analysis),
            RenderPortalAnalysis(ScratchAnalysis(snap)));
  EXPECT_EQ(inc.stats.resources_updated, 6u);
  EXPECT_EQ(inc.stats.tables_clean, 0u);
  EXPECT_EQ(inc.stats.fd_reused, 0u);
  EXPECT_EQ(inc.stats.pairs_carried, 0u);
}

TEST(IncrementalTest, RenamedResourcesStayClean) {
  corpus::PortalSnapshot snap = MakeSnapshot();
  IncrementalState state(fd::kUnlimitedFdMemoryBudget);
  RunIncrementalAnalysis(state, snap, SuiteOptions(), EnvProofIngest());

  corpus::ChurnProfile churn = NoChurn();
  churn.resource_rename_rate = 1.0;  // rename everything, bytes untouched
  snap = corpus::AdvanceEpoch(snap, churn, 1);
  const IncrementalResult inc =
      RunIncrementalAnalysis(state, snap, SuiteOptions(), EnvProofIngest());

  EXPECT_EQ(RenderPortalAnalysis(inc.analysis),
            RenderPortalAnalysis(ScratchAnalysis(snap)));
  // The cache keys on content, so a rename costs nothing downstream of
  // the fetch: every table is clean and every FD outcome replays.
  EXPECT_EQ(inc.stats.renames_detected, 6u);
  EXPECT_EQ(inc.stats.tables_clean, 6u);
  EXPECT_EQ(inc.stats.fd_reused, 6u);
  EXPECT_EQ(inc.stats.fd_recomputed, 0u);
}

TEST(IncrementalTest, DeclinedCacheDegradesToRecomputeByteIdentically) {
  corpus::PortalSnapshot snap = MakeSnapshot();
  IncrementalState state(/*cache_budget_override=*/1);
  const IncrementalResult first =
      RunIncrementalAnalysis(state, snap, SuiteOptions(), EnvProofIngest());
  EXPECT_GT(first.stats.cache_declines, 0u);

  snap = corpus::AdvanceEpoch(snap, NoChurn(), 1);
  const IncrementalResult inc =
      RunIncrementalAnalysis(state, snap, SuiteOptions(), EnvProofIngest());

  // Everything the governor declined is recomputed — output unchanged.
  EXPECT_EQ(RenderPortalAnalysis(inc.analysis),
            RenderPortalAnalysis(ScratchAnalysis(snap)));
  EXPECT_EQ(inc.stats.parse_reused, 0u);
  EXPECT_EQ(inc.stats.fd_reused, 0u);
  EXPECT_EQ(inc.stats.keys_reused, 0u);
  // The joinable-pair carry does not go through the governor, so clean
  // tables still skip the pair re-verification.
  EXPECT_EQ(inc.stats.tables_clean, 6u);
  EXPECT_EQ(inc.stats.pairs_recomputed, 0u);
}

TEST(IncrementalTest, DriftedTablesRemineWhileRestReplays) {
  corpus::PortalSnapshot snap = MakeSnapshot();
  IncrementalState state(fd::kUnlimitedFdMemoryBudget);
  RunIncrementalAnalysis(state, snap, SuiteOptions(), EnvProofIngest());

  // Drift exactly one resource's schema by hand: new trailing column.
  corpus::PortalSnapshot next = snap;
  next.epoch = 1;
  core::Resource& drifted = next.portal.datasets[0].resources[0];
  std::string patched;
  bool header = true;
  for (size_t pos = 0; pos < drifted.content.size();) {
    const size_t eol = drifted.content.find('\n', pos);
    patched += drifted.content.substr(pos, eol - pos);
    patched += header ? ",flag" : ",1";
    patched += '\n';
    header = false;
    pos = eol + 1;
  }
  drifted.content = std::move(patched);
  if (corpus::TableTruth* t =
          next.truth.FindMutable("ds0", drifted.name)) {
    corpus::ColumnTruth ct;
    ct.domain = "ds0.flag";
    t->columns.push_back(ct);
  }

  const IncrementalResult inc =
      RunIncrementalAnalysis(state, next, SuiteOptions(), EnvProofIngest());
  EXPECT_EQ(RenderPortalAnalysis(inc.analysis),
            RenderPortalAnalysis(ScratchAnalysis(next)));
  // Schema drift invalidates the drifted table's artifacts and nothing
  // else: 5 tables replay, 1 re-mines.
  EXPECT_EQ(inc.stats.resources_updated, 1u);
  EXPECT_EQ(inc.stats.tables_clean, 5u);
  EXPECT_EQ(inc.stats.tables_dirty, 1u);
  EXPECT_EQ(inc.stats.fd_reused, 5u);
  EXPECT_EQ(inc.stats.fd_recomputed, 1u);
}

TEST(IncrementalTest, StatsRenderMentionsEveryCounter) {
  IncrementalStats stats;
  stats.epoch = 2;
  const std::string out = RenderIncrementalStats(stats);
  for (const char* needle :
       {"incremental epoch 2", "resources added", "renames", "tables clean",
        "parse reused", "keys reused", "FDs reused", "signatures",
        "fingerprints", "pairs carried", "cache hit bytes", "declines",
        "saved seconds", "epoch seconds"}) {
    EXPECT_NE(out.find(needle), std::string::npos) << needle;
  }
}

}  // namespace
}  // namespace ogdp::core
