// Tests for the ogdp::check fuzz-and-oracle harness: bounded-budget runs
// of every oracle (the committed corpus under tests/corpus/ rides along in
// the CSV mutation pool), plus determinism guarantees — same seed, same
// report, byte for byte. The check_driver binary runs the same oracles at
// larger budgets.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "check/csv_mutator.h"
#include "check/oracles.h"
#include "check/random_table.h"
#include "csv/csv_reader.h"
#include "table/table.h"
#include "util/rng.h"

namespace ogdp::check {
namespace {

// The committed regression corpus, sorted by filename for determinism.
std::vector<std::string> LoadCommittedCorpus() {
  std::vector<std::filesystem::path> paths;
  for (const auto& entry :
       std::filesystem::directory_iterator(OGDP_TEST_CORPUS_DIR)) {
    if (entry.is_regular_file() && entry.path().extension() == ".csv") {
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<std::string> docs;
  for (const auto& path : paths) {
    auto content = csv::ReadFileToString(path.string());
    EXPECT_TRUE(content.ok()) << content.status();
    if (content.ok()) docs.push_back(std::move(content).value());
  }
  return docs;
}

// Budget sized so the whole suite stays a tier-1 citizen; check_driver is
// the place for long runs.
OracleOptions BoundedOptions() {
  OracleOptions options;
  options.seed = 20240805;
  options.iterations = 12;
  options.csv_seeds = LoadCommittedCorpus();
  return options;
}

TEST(CheckHarnessTest, CommittedCorpusIsPresent) {
  EXPECT_GE(LoadCommittedCorpus().size(), 6u);
}

TEST(CheckHarnessTest, CsvRoundTripOracle) {
  const OracleReport report = CheckCsvRoundTrip(BoundedOptions());
  EXPECT_TRUE(report.ok()) << report.ToString();
  // Built-in seeds + committed corpus replayed verbatim + mutants.
  EXPECT_GE(report.cases, 24u);
}

TEST(CheckHarnessTest, FdDifferentialOracle) {
  const OracleReport report = CheckFdDifferential(BoundedOptions());
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.cases, 12u);
}

TEST(CheckHarnessTest, BcnfLosslessJoinOracle) {
  const OracleReport report = CheckBcnfLosslessJoin(BoundedOptions());
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.cases, 12u);
}

// Regression coverage for the MinHash partial-band out-of-bounds read:
// the config list inside this oracle includes num_hashes % bands != 0
// shapes, so the pre-fix code fails this test under ASan.
TEST(CheckHarnessTest, LshSupersetOracle) {
  const OracleReport report = CheckLshSuperset(BoundedOptions());
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.cases, 12u * 6u);
}

TEST(CheckHarnessTest, CodecRoundTripOracle) {
  const OracleReport report = CheckCodecRoundTrip(BoundedOptions());
  EXPECT_TRUE(report.ok()) << report.ToString();
  // (empty doc + built-in seeds + committed corpus + mutants/synthetics)
  // x two codecs.
  EXPECT_GE(report.cases, 2u * (1u + 12u));
}

TEST(CheckHarnessTest, CleaningIdempotenceOracle) {
  const OracleReport report = CheckCleaningIdempotence(BoundedOptions());
  EXPECT_TRUE(report.ok()) << report.ToString();
  // Constructed trailing-blank tables + (seeds + corpus + mutants).
  EXPECT_GE(report.cases, 24u);
}

// Regression coverage for two union-pipeline bugs: the near-unionable
// pass dropping sim >= 1.0 pairs with distinct fingerprints (INT/DOUBLE
// twins), and SampleUnionablePairs under-returning from small pair
// spaces. The differential cases plant both shapes.
TEST(CheckHarnessTest, UnionFinderDifferentialOracle) {
  const OracleReport report = CheckUnionFinderDifferential(BoundedOptions());
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.cases, 12u);
}

TEST(CheckHarnessTest, HeaderModalWidthOracle) {
  const OracleReport report = CheckHeaderModalWidth(BoundedOptions());
  EXPECT_TRUE(report.ok()) << report.ToString();
  // Synthetic ragged docs + (built-in seeds + corpus + mutants).
  EXPECT_GE(report.cases, 24u);
}

TEST(CheckHarnessTest, FetchEquivalenceOracle) {
  const OracleReport report = CheckFetchEquivalence(BoundedOptions());
  EXPECT_TRUE(report.ok()) << report.ToString();
  // One transient case per iteration plus a permanent-failure case for
  // every portal with at least one fetchable resource.
  EXPECT_GE(report.cases, 12u);
}

// Bounded run of the durable-cache crash-tolerance oracle: killed and
// cleanly restarted durable-backed epochs must reproduce the from-scratch
// bytes under injected storage faults, with corrupt records quarantined
// and the recovery-scan conservation law intact. Nightly runs the same
// oracle at --iters 5000.
TEST(CheckHarnessTest, DurableCacheEquivalenceOracle) {
  OracleOptions options = BoundedOptions();
  options.iterations = 6;  // each case runs several full analysis epochs
  const OracleReport report = CheckDurableCacheEquivalence(options);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_GE(report.cases, 6u);
}

// Bounded run of the dialect-sniffer stability oracle: SniffDialect is
// invariant under trailing spaces and blank-line padding.
TEST(CheckHarnessTest, DialectStabilityOracle) {
  const OracleReport report = CheckDialectStability(BoundedOptions());
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.cases, 12u * 3u);  // three whitespace variants per case
}

// Bounded run of the serving-layer cache/scheduler oracle: cached,
// uncached, and brute-force results byte-identical across cache budgets
// and two Refresh epochs, plus the fair scheduler's starvation and
// shedding contracts. check_driver runs the same oracle at nightly scale.
TEST(CheckHarnessTest, ServeCacheEquivalenceOracle) {
  const OracleReport report = CheckServeCacheEquivalence(BoundedOptions());
  EXPECT_TRUE(report.ok()) << report.ToString();
  // Per-table cases across two epochs per iteration, plus the two
  // scheduler contract cases.
  EXPECT_GE(report.cases, 12u + 2u);
}

TEST(CheckHarnessTest, MutatorIsDeterministic) {
  Rng a(123);
  Rng b(123);
  const auto& seeds = BuiltinCsvSeeds();
  for (size_t i = 0; i < 60; ++i) {
    const std::string& doc = seeds[i % seeds.size()];
    EXPECT_EQ(MutateCsv(a, doc), MutateCsv(b, doc));
  }
}

TEST(CheckHarnessTest, RandomTableIsDeterministicAndInShape) {
  Rng a(7);
  Rng b(7);
  RandomTableOptions shape;
  shape.null_ratio = 0.2;
  for (int i = 0; i < 10; ++i) {
    const table::Table ta = RandomTable(a, shape, "t");
    const table::Table tb = RandomTable(b, shape, "t");
    EXPECT_EQ(ta.ToCsvString(), tb.ToCsvString());
    EXPECT_GE(ta.num_columns(), shape.min_columns);
    EXPECT_LE(ta.num_columns(), shape.max_columns);
    EXPECT_GE(ta.num_rows(), shape.min_rows);
    EXPECT_LE(ta.num_rows(), shape.max_rows);
  }
}

TEST(CheckHarnessTest, ReportsAreByteReproducible) {
  const OracleOptions options = BoundedOptions();
  const auto first = RunAllOracles(options);
  const auto second = RunAllOracles(options);
  ASSERT_EQ(first.size(), 15u);
  ASSERT_EQ(second.size(), first.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].ToString(), second[i].ToString());
  }
}

TEST(CheckHarnessTest, DifferentSeedsChangeTheMutationStream) {
  // Not a strict requirement of any oracle, but a canary against the
  // harness silently ignoring its seed.
  OracleOptions a = BoundedOptions();
  OracleOptions b = BoundedOptions();
  b.seed = a.seed + 1;
  Rng ra(a.seed);
  Rng rb(b.seed);
  const std::string& doc = BuiltinCsvSeeds().front();
  EXPECT_NE(MutateCsv(ra, doc), MutateCsv(rb, doc));
}

}  // namespace
}  // namespace ogdp::check
