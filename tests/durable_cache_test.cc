// Tests for the durable analysis cache: storage-fault spec parsing and
// deterministic per-file scripting, artifact codec round-trips, restart
// recovery, degradation on unwritable directories, version-bump and
// corruption quarantine, and crash-resume equivalence of a mid-epoch
// killed incremental run.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/analysis_cache.h"
#include "core/analysis_suite.h"
#include "core/durable_cache.h"
#include "core/incremental.h"
#include "core/ingestion.h"
#include "core/portal_model.h"
#include "core/storage_faults.h"
#include "corpus/snapshot.h"
#include "fd/memory_governor.h"
#include "fetch/fault_schedule.h"
#include "table/table.h"

namespace ogdp::core {
namespace {

namespace fs = std::filesystem;

// Unique per-test scratch directory, removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag)
      : path_(fs::temp_directory_path() /
              ("ogdp_durable_test_" + tag + "_" +
               std::to_string(::testing::UnitTest::GetInstance()
                                  ->random_seed()))) {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

StorageFaultProfile Clean() { return StorageFaultProfile{}; }

std::vector<std::string> ListDir(const fs::path& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(dir, ec)) {
    names.push_back(e.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

// ------------------------------------------------------ storage faults

TEST(StorageFaultsTest, ParsesFullSpec) {
  auto profile = ParseStorageFaultProfile(
      "torn=0.2,bitflip=0.1,zero=0.05,missing=0.1,extra=0.05,"
      "openfail=0.02,seed=42");
  ASSERT_TRUE(profile.ok()) << profile.status();
  EXPECT_DOUBLE_EQ(profile->torn_write_rate, 0.2);
  EXPECT_DOUBLE_EQ(profile->bit_flip_rate, 0.1);
  EXPECT_DOUBLE_EQ(profile->zero_length_rate, 0.05);
  EXPECT_DOUBLE_EQ(profile->missing_rate, 0.1);
  EXPECT_DOUBLE_EQ(profile->extra_file_rate, 0.05);
  EXPECT_DOUBLE_EQ(profile->open_error_rate, 0.02);
  EXPECT_EQ(profile->seed, 42u);
  EXPECT_TRUE(profile->any());
}

TEST(StorageFaultsTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(ParseStorageFaultProfile("torn=1.5").ok());   // rate > 1
  EXPECT_FALSE(ParseStorageFaultProfile("bogus=0.1").ok());  // unknown key
  EXPECT_FALSE(ParseStorageFaultProfile("torn=abc").ok());   // not a number
  EXPECT_FALSE(ParseStorageFaultProfile("torn").ok());       // no '='
  auto empty = ParseStorageFaultProfile("");
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty->any());
}

TEST(StorageFaultsTest, ScriptsAreDeterministicPerFile) {
  StorageFaultProfile profile;
  profile.torn_write_rate = 0.4;
  profile.bit_flip_rate = 0.4;
  profile.seed = 7;
  FaultyCacheDir dir(profile);

  const StorageFaultSpec a1 = dir.ScriptFor("fd-0000000000000001.ogdc");
  const StorageFaultSpec a2 = dir.ScriptFor("fd-0000000000000001.ogdc");
  EXPECT_EQ(a1.kind, a2.kind);
  EXPECT_DOUBLE_EQ(a1.torn_frac, a2.torn_frac);
  EXPECT_EQ(a1.flip_mask, a2.flip_mask);

  // Scripts are salted by file name: across many names at these rates at
  // least one must differ (all-equal would mean the salt is ignored).
  bool any_differs = false;
  for (int i = 0; i < 32 && !any_differs; ++i) {
    const StorageFaultSpec other = dir.ScriptFor(
        "fd-00000000000000" + std::to_string(10 + i) + ".ogdc");
    any_differs = other.kind != a1.kind;
  }
  EXPECT_TRUE(any_differs);
}

TEST(StorageFaultsTest, TornWriteAlwaysDropsBytes) {
  StorageFaultProfile profile;
  profile.torn_write_rate = 1.0;
  FaultyCacheDir dir(profile);
  const std::string bytes(64, 'x');
  for (int i = 0; i < 8; ++i) {
    const auto on_disk = dir.ApplyPublishFaults(
        "parse-000000000000000" + std::to_string(i) + ".ogdc", bytes);
    ASSERT_TRUE(on_disk.has_value());
    EXPECT_LT(on_disk->size(), bytes.size());
    EXPECT_EQ(*on_disk, bytes.substr(0, on_disk->size()));  // a prefix
  }
}

TEST(StorageFaultsTest, MissingPublishVanishesAndCleanPassesThrough) {
  StorageFaultProfile missing;
  missing.missing_rate = 1.0;
  EXPECT_FALSE(FaultyCacheDir(missing)
                   .ApplyPublishFaults("fd-0000000000000001.ogdc", "abc")
                   .has_value());
  const auto clean =
      FaultyCacheDir(Clean()).ApplyPublishFaults("fd-0.ogdc", "abc");
  ASSERT_TRUE(clean.has_value());
  EXPECT_EQ(*clean, "abc");
}

// ------------------------------------------------------ payload codecs

TEST(DurableCacheTest, FdArtifactCodecRoundTrips) {
  FdArtifact art;
  art.mined = true;
  art.columns = 5;
  art.has_fd = true;
  art.has_lhs1_fd = false;
  art.decomp_count = 3;
  art.partition_cols = {0, 2, 4};
  art.gains = {0.5, 0.25};
  art.lease_peak = 4096;
  art.declines = 1;
  art.rebuilds = 2;
  art.compute_seconds = 0.125;

  FdArtifact out;
  ASSERT_TRUE(DecodeFdArtifact(EncodeFdArtifact(art), &out));
  EXPECT_EQ(out.mined, art.mined);
  EXPECT_EQ(out.columns, art.columns);
  EXPECT_EQ(out.has_fd, art.has_fd);
  EXPECT_EQ(out.decomp_count, art.decomp_count);
  EXPECT_EQ(out.partition_cols, art.partition_cols);
  EXPECT_EQ(out.gains, art.gains);
  EXPECT_EQ(out.lease_peak, art.lease_peak);
  EXPECT_DOUBLE_EQ(out.compute_seconds, art.compute_seconds);

  // Truncation and trailing garbage are both corruption, not slack.
  const std::string payload = EncodeFdArtifact(art);
  EXPECT_FALSE(DecodeFdArtifact(payload.substr(0, payload.size() - 1), &out));
  EXPECT_FALSE(DecodeFdArtifact(payload + "x", &out));
}

TEST(DurableCacheTest, ParseArtifactCodecRebuildsTheTableExactly) {
  const std::vector<std::string> header = {"id", "name", "value"};
  const std::vector<std::vector<std::string>> rows = {
      {"1", "alpha", "10"}, {"2", "", "20"}, {"3", "alpha", ""}};
  auto table = table::Table::FromRecords("t.csv", header, rows);
  ASSERT_TRUE(table.ok()) << table.status();
  table->set_csv_size_bytes(77);

  ParseArtifact art;
  art.stage = 5;
  art.status = Status::OK();
  art.trailing_removed = 2;
  art.table = std::make_shared<const table::Table>(std::move(table).value());
  art.compute_seconds = 0.25;

  ParseArtifact out;
  ASSERT_TRUE(DecodeParseArtifact(EncodeParseArtifact(art), &out));
  EXPECT_EQ(out.stage, art.stage);
  EXPECT_EQ(out.trailing_removed, art.trailing_removed);
  ASSERT_NE(out.table, nullptr);
  EXPECT_EQ(out.table->ToCsvString(), art.table->ToCsvString());
  EXPECT_EQ(out.table->content_hash(), art.table->content_hash());
  EXPECT_EQ(out.table->csv_size_bytes(), art.table->csv_size_bytes());
  for (size_t c = 0; c < art.table->num_columns(); ++c) {
    EXPECT_EQ(out.table->column(c).null_count(),
              art.table->column(c).null_count());
    EXPECT_EQ(out.table->column(c).distinct_count(),
              art.table->column(c).distinct_count());
  }

  // A non-table artifact (removed-wide) round-trips its status too.
  ParseArtifact wide;
  wide.stage = 4;
  wide.status = Status::OutOfRange("wider than 100 columns");
  ParseArtifact wide_out;
  ASSERT_TRUE(DecodeParseArtifact(EncodeParseArtifact(wide), &wide_out));
  EXPECT_EQ(wide_out.table, nullptr);
  EXPECT_EQ(wide_out.status.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(wide_out.status.message(), "wider than 100 columns");
}

TEST(DurableCacheTest, SmallCodecsRoundTripAndRejectGarbage) {
  KeyArtifact key;
  key.outcome = -1;
  key.compute_seconds = 0.5;
  KeyArtifact key_out;
  ASSERT_TRUE(DecodeKeyArtifact(EncodeKeyArtifact(key), &key_out));
  EXPECT_EQ(key_out.outcome, -1);

  SignatureArtifact sig;
  sig.signature.values = {1, 2, 3, 0xffffffffffffffffULL};
  SignatureArtifact sig_out;
  ASSERT_TRUE(DecodeSignatureArtifact(EncodeSignatureArtifact(sig),
                                      &sig_out));
  EXPECT_EQ(sig_out.signature.values, sig.signature.values);

  uint64_t fp = 0;
  ASSERT_TRUE(DecodeFingerprint(EncodeFingerprint(0xdeadbeef), &fp));
  EXPECT_EQ(fp, 0xdeadbeefu);
  EXPECT_FALSE(DecodeFingerprint("short", &fp));
  EXPECT_FALSE(DecodeFingerprint(EncodeFingerprint(1) + "x", &fp));
}

// ---------------------------------------------------- restart recovery

TEST(DurableCacheTest, PersistsAndReloadsAcrossRestart) {
  ScratchDir dir("reload");
  const uint64_t fd_key = FdCacheKey(0x1234, 7);
  const uint64_t keys_key = KeyCacheKey(0x1234);
  {
    AnalysisCache cache(fd::kUnlimitedFdMemoryBudget, dir.str(), Clean());
    ASSERT_TRUE(cache.durable_enabled()) << cache.durable_status();
    FdArtifact fd_art;
    fd_art.mined = true;
    fd_art.decomp_count = 2;
    cache.StoreFd(fd_key, fd_art);
    KeyArtifact key_art;
    key_art.outcome = 2;
    cache.StoreKeys(keys_key, key_art);
    cache.StoreFingerprint(FingerprintCacheKey(0x9999), 0xabcd);
    EXPECT_EQ(cache.durable_stats().publishes, 3u);
  }

  AnalysisCache reloaded(fd::kUnlimitedFdMemoryBudget, dir.str(), Clean());
  const DurableStoreStats ds = reloaded.durable_stats();
  EXPECT_EQ(ds.scanned, 3u);
  EXPECT_EQ(ds.loaded, 3u);
  EXPECT_EQ(ds.quarantined, 0u);
  const auto fd_hit = reloaded.FindFd(fd_key);
  ASSERT_NE(fd_hit, nullptr);
  EXPECT_TRUE(fd_hit->mined);
  EXPECT_EQ(fd_hit->decomp_count, 2u);
  const auto key_hit = reloaded.FindKeys(keys_key);
  ASSERT_NE(key_hit, nullptr);
  EXPECT_EQ(key_hit->outcome, 2);
  uint64_t fp = 0;
  EXPECT_TRUE(reloaded.FindFingerprint(FingerprintCacheKey(0x9999), &fp));
  EXPECT_EQ(fp, 0xabcdu);
  // Recovery charges the governor but is not a Store call.
  EXPECT_EQ(reloaded.stats().fd.stores, 0u);
  EXPECT_EQ(reloaded.stats().fd.hits, 1u);
}

TEST(DurableCacheTest, EmptyAndAbsentDirectoriesRecoverNothing) {
  ScratchDir dir("empty");
  AnalysisCache cache(fd::kUnlimitedFdMemoryBudget, dir.str(), Clean());
  EXPECT_TRUE(cache.durable_enabled());
  EXPECT_TRUE(cache.durable_status().ok());
  const DurableStoreStats ds = cache.durable_stats();
  EXPECT_EQ(ds.scanned, 0u);
  EXPECT_EQ(ds.loaded, 0u);

  // Empty-string override means durability explicitly off.
  AnalysisCache off(fd::kUnlimitedFdMemoryBudget, std::string(), Clean());
  EXPECT_FALSE(off.durable_enabled());
  EXPECT_TRUE(off.durable_status().ok());
}

TEST(DurableCacheTest, UnwritableDirDegradesToMemoryOnlyWithWarning) {
  // A path nested *under a regular file* cannot be created even as root,
  // so this exercises the degradation path portably.
  ScratchDir dir("degrade");
  std::error_code ec;
  fs::create_directories(dir.path(), ec);
  std::ofstream(dir.path() / "blocker") << "not a directory";
  const std::string bad = (dir.path() / "blocker" / "cache").string();

  AnalysisCache cache(fd::kUnlimitedFdMemoryBudget, bad, Clean());
  EXPECT_FALSE(cache.durable_enabled());
  EXPECT_FALSE(cache.durable_status().ok());  // a warning, not a crash

  // The cache still works memory-only.
  FdArtifact art;
  art.mined = true;
  cache.StoreFd(FdCacheKey(1, 1), art);
  EXPECT_NE(cache.FindFd(FdCacheKey(1, 1)), nullptr);
  EXPECT_EQ(cache.durable_stats().publishes, 0u);
}

TEST(DurableCacheTest, VersionBumpInvalidatesOldRecords) {
  ScratchDir dir("version");
  const uint64_t key = FdCacheKey(0x77, 1);
  {
    AnalysisCache cache(fd::kUnlimitedFdMemoryBudget, dir.str(), Clean());
    FdArtifact art;
    art.mined = true;
    cache.StoreFd(key, art);
  }
  // Patch the format-version field (bytes 4..7, little-endian after the
  // "OGDC" magic) to a future version.
  const fs::path file =
      dir.path() / DurableStore::FileNameFor(DurableKind::kFd, key);
  ASSERT_TRUE(fs::exists(file));
  {
    std::fstream f(file, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(4);
    f.put(static_cast<char>(0xff));
  }

  AnalysisCache reloaded(fd::kUnlimitedFdMemoryBudget, dir.str(), Clean());
  const DurableStoreStats ds = reloaded.durable_stats();
  EXPECT_EQ(ds.scanned, 1u);
  EXPECT_EQ(ds.loaded, 0u);
  EXPECT_EQ(ds.quarantined, 1u);
  EXPECT_EQ(reloaded.FindFd(key), nullptr);  // never served
  EXPECT_FALSE(fs::exists(file));            // renamed aside
  EXPECT_TRUE(
      fs::exists(fs::path(file.string() + ".quarantine")));
}

TEST(DurableCacheTest, QuarantineNamingNeverClobbersEarlierGenerations) {
  ScratchDir dir("quarantine");
  std::error_code ec;
  fs::create_directories(dir.path(), ec);
  const std::string name =
      DurableStore::FileNameFor(DurableKind::kFd, 0x42);
  std::ofstream(dir.path() / name) << "garbage";
  std::ofstream(dir.path() / (name + ".quarantine")) << "older garbage";

  AnalysisCache cache(fd::kUnlimitedFdMemoryBudget, dir.str(), Clean());
  EXPECT_EQ(cache.durable_stats().quarantined, 1u);
  EXPECT_TRUE(fs::exists(dir.path() / (name + ".quarantine")));
  EXPECT_TRUE(fs::exists(dir.path() / (name + ".quarantine1")));
  EXPECT_FALSE(fs::exists(dir.path() / name));
}

TEST(DurableCacheTest, DoubleRestartIsIdempotent) {
  ScratchDir dir("double");
  {
    AnalysisCache cache(fd::kUnlimitedFdMemoryBudget, dir.str(), Clean());
    FdArtifact art;
    art.mined = true;
    cache.StoreFd(FdCacheKey(1, 1), art);
    cache.StoreFingerprint(FingerprintCacheKey(2), 5);
  }
  std::vector<std::string> after_first;
  {
    AnalysisCache cache(fd::kUnlimitedFdMemoryBudget, dir.str(), Clean());
    EXPECT_EQ(cache.durable_stats().loaded, 2u);
    // Re-storing recovered artifacts publishes nothing new: the final
    // files already exist.
    FdArtifact art;
    art.mined = true;
    cache.StoreFd(FdCacheKey(1, 1), art);
    after_first = ListDir(dir.path());
  }
  AnalysisCache cache(fd::kUnlimitedFdMemoryBudget, dir.str(), Clean());
  const DurableStoreStats ds = cache.durable_stats();
  EXPECT_EQ(ds.scanned, 2u);
  EXPECT_EQ(ds.loaded, 2u);
  EXPECT_EQ(ds.quarantined, 0u);
  EXPECT_EQ(ListDir(dir.path()), after_first);
}

TEST(DurableCacheTest, DeclinedRecoveryLeavesFilesForBiggerBudgets) {
  ScratchDir dir("declined");
  {
    // A 1-byte governor declines the in-memory store, but the artifact is
    // still published so a future restart can use it.
    AnalysisCache cache(1, dir.str(), Clean());
    FdArtifact art;
    art.mined = true;
    art.decomp_count = 9;
    cache.StoreFd(FdCacheKey(3, 3), art);
    EXPECT_EQ(cache.FindFd(FdCacheKey(3, 3)), nullptr);
    EXPECT_EQ(cache.durable_stats().publishes, 1u);
  }
  {
    // Same tiny budget at recovery: decode succeeds, admission declines,
    // the file stays on disk.
    AnalysisCache small(1, dir.str(), Clean());
    const DurableStoreStats ds = small.durable_stats();
    EXPECT_EQ(ds.scanned, 1u);
    EXPECT_EQ(ds.load_declines, 1u);
    EXPECT_EQ(ds.loaded, 0u);
    EXPECT_EQ(small.FindFd(FdCacheKey(3, 3)), nullptr);
  }
  AnalysisCache big(fd::kUnlimitedFdMemoryBudget, dir.str(), Clean());
  EXPECT_EQ(big.durable_stats().loaded, 1u);
  const auto hit = big.FindFd(FdCacheKey(3, 3));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->decomp_count, 9u);
}

TEST(DurableCacheTest, CorruptedEntriesAreQuarantinedAndRecomputed) {
  ScratchDir dir("corrupt");
  StorageFaultProfile faults;
  faults.torn_write_rate = 1.0;  // every publish lands as a strict prefix
  faults.seed = 11;
  {
    AnalysisCache cache(fd::kUnlimitedFdMemoryBudget, dir.str(), faults);
    FdArtifact art;
    art.mined = true;
    cache.StoreFd(FdCacheKey(5, 5), art);
  }
  AnalysisCache reloaded(fd::kUnlimitedFdMemoryBudget, dir.str(), Clean());
  const DurableStoreStats ds = reloaded.durable_stats();
  EXPECT_EQ(ds.scanned, 1u);
  EXPECT_EQ(ds.quarantined, 1u);
  EXPECT_EQ(ds.loaded, 0u);
  EXPECT_EQ(reloaded.FindFd(FdCacheKey(5, 5)), nullptr);

  // Recompute-and-store now repairs the directory.
  FdArtifact art;
  art.mined = true;
  reloaded.StoreFd(FdCacheKey(5, 5), art);
  AnalysisCache healthy(fd::kUnlimitedFdMemoryBudget, dir.str(), Clean());
  EXPECT_EQ(healthy.durable_stats().loaded, 1u);
}

// ------------------------------------------------------- crash resume

corpus::PortalSnapshot CrashFixtureSnapshot() {
  corpus::PortalSnapshot snap;
  snap.portal.name = "crash";
  for (int d = 0; d < 2; ++d) {
    core::Dataset ds;
    ds.id = "ds" + std::to_string(d);
    for (int r = 0; r < 2; ++r) {
      core::Resource res;
      res.name = "t" + std::to_string(d) + std::to_string(r) + ".csv";
      res.claimed_format = "CSV";
      std::string doc = "record_id,region,period,code,value\n";
      for (int i = 0; i < 24; ++i) {
        doc += std::to_string(i) + ",g" + std::to_string(i % 4) + ",m" +
               std::to_string(i % 12) + ",c" +
               std::to_string((i * 7 + d) % 40) + "," +
               std::to_string(100 * d + 10 * r + i) + "\n";
      }
      res.content = std::move(doc);
      ds.resources.push_back(std::move(res));
    }
    snap.portal.datasets.push_back(std::move(ds));
  }
  return snap;
}

AnalysisSuiteOptions CrashSuiteOptions() {
  AnalysisSuiteOptions suite;
  suite.fd_memory_budget_bytes = fd::kUnlimitedFdMemoryBudget;
  return suite;
}

IngestOptions CrashIngestOptions() {
  IngestOptions ingest;
  ingest.faults = fetch::FaultProfile{};  // explicit: env-proof
  return ingest;
}

TEST(CrashResumeTest, KilledEpochResumesByteIdentically) {
  ScratchDir dir("resume");
  const corpus::PortalSnapshot snap = CrashFixtureSnapshot();

  PortalBundle scratch;
  scratch.name = snap.portal.name;
  scratch.portal = snap.portal;
  scratch.truth = snap.truth;
  scratch.ingest = IngestPortal(snap.portal, CrashIngestOptions());
  const PortalAnalysis full = RunFullAnalysis(scratch, CrashSuiteOptions());

  // Kill the first run after its third durable publish.
  auto state = std::make_unique<IncrementalState>(
      fd::kUnlimitedFdMemoryBudget, dir.str(), Clean());
  state->cache.SetCrashAfterPublishes(3);
  EXPECT_THROW(RunIncrementalAnalysis(*state, snap, CrashSuiteOptions(),
                                      CrashIngestOptions()),
               SimulatedCrashError);

  // The dead process's memory is gone; a fresh state over the same
  // directory recovers what landed and the re-run epoch is byte-identical.
  state = std::make_unique<IncrementalState>(fd::kUnlimitedFdMemoryBudget,
                                             dir.str(), Clean());
  const DurableStoreStats ds = state->cache.durable_stats();
  EXPECT_GE(ds.scanned, 3u);  // at least the publishes before the crash
  EXPECT_EQ(ds.scanned, ds.loaded + ds.load_declines + ds.quarantined);
  EXPECT_EQ(ds.quarantined, 0u);  // completed publishes are valid records

  const IncrementalResult resumed = RunIncrementalAnalysis(
      *state, snap, CrashSuiteOptions(), CrashIngestOptions());
  EXPECT_EQ(RenderPortalAnalysis(resumed.analysis),
            RenderPortalAnalysis(full));
  // The resumed epoch replays recovered artifacts instead of recomputing
  // everything.
  EXPECT_GT(state->cache.stats().total_hits(), 0u);
}

TEST(CrashResumeTest, DisarmedHookNeverFires) {
  ScratchDir dir("disarmed");
  const corpus::PortalSnapshot snap = CrashFixtureSnapshot();
  IncrementalState state(fd::kUnlimitedFdMemoryBudget, dir.str(), Clean());
  state.cache.SetCrashAfterPublishes(3);
  state.cache.SetCrashAfterPublishes(0);  // disarm before the run
  EXPECT_NO_THROW(RunIncrementalAnalysis(state, snap, CrashSuiteOptions(),
                                         CrashIngestOptions()));
  EXPECT_GT(state.cache.durable_stats().publishes, 0u);
}

}  // namespace
}  // namespace ogdp::core
