// Tests for Jaccard search (prefix filter vs brute force), expansion
// ratios, hash join, and the paper's stratified pair sampler.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "join/expansion.h"
#include "join/join_labels.h"
#include "join/joinable_pair_finder.h"
#include "join/pair_sampler.h"
#include "table/table.h"
#include "util/rng.h"

namespace ogdp::join {
namespace {

using table::Table;

Table MakeTable(const std::string& name,
                const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows) {
  auto t = Table::FromRecords(name, header, rows);
  EXPECT_TRUE(t.ok());
  return std::move(t).value();
}

// Builds a table with one column holding the given values.
Table OneColumn(const std::string& name, const std::vector<int>& values) {
  std::vector<std::vector<std::string>> rows;
  for (int v : values) rows.push_back({std::to_string(v)});
  return MakeTable(name, {"v"}, rows);
}

std::vector<int> Range(int lo, int hi) {
  std::vector<int> out;
  for (int i = lo; i <= hi; ++i) out.push_back(i);
  return out;
}

TEST(JaccardTest, SortedSetMath) {
  std::vector<uint32_t> a = {1, 2, 3, 4};
  std::vector<uint32_t> b = {3, 4, 5, 6};
  EXPECT_EQ(OverlapSorted(a, b), 2u);
  EXPECT_DOUBLE_EQ(JaccardSorted(a, b), 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(JaccardSorted(a, a), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSorted({}, {}), 0.0);
}

TEST(JoinablePairFinderTest, FindsHighOverlapPair) {
  std::vector<Table> tables;
  tables.push_back(OneColumn("t1", Range(1, 20)));
  tables.push_back(OneColumn("t2", Range(1, 20)));   // J = 1
  tables.push_back(OneColumn("t3", Range(1, 18)));   // J = 0.9
  tables.push_back(OneColumn("t4", Range(50, 70)));  // J = 0
  JoinablePairFinder finder(tables);
  auto pairs = finder.FindAllPairs();
  std::set<std::pair<size_t, size_t>> table_pairs;
  for (const auto& p : pairs) table_pairs.insert({p.a.table, p.b.table});
  EXPECT_TRUE(table_pairs.count({0, 1}));
  EXPECT_TRUE(table_pairs.count({0, 2}));  // 18/20 = 0.9 at threshold
  EXPECT_FALSE(table_pairs.count({0, 3}));
}

TEST(JoinablePairFinderTest, MinUniqueFilter) {
  // Columns with < 10 distinct values are excluded (§5.1).
  std::vector<Table> tables;
  tables.push_back(OneColumn("t1", Range(1, 5)));
  tables.push_back(OneColumn("t2", Range(1, 5)));
  JoinablePairFinder finder(tables);
  EXPECT_TRUE(finder.column_sets().empty());
  EXPECT_TRUE(finder.FindAllPairs().empty());
}

TEST(JoinablePairFinderTest, SameTableColumnsNeverPair) {
  std::vector<Table> tables;
  std::vector<std::vector<std::string>> rows;
  for (int i = 1; i <= 20; ++i) {
    rows.push_back({std::to_string(i), std::to_string(i)});
  }
  tables.push_back(MakeTable("t", {"a", "b"}, rows));
  JoinablePairFinder finder(tables);
  EXPECT_TRUE(finder.FindAllPairs().empty());
}

TEST(JoinablePairFinderTest, ThresholdConfigurable) {
  std::vector<Table> tables;
  tables.push_back(OneColumn("t1", Range(1, 20)));
  tables.push_back(OneColumn("t2", Range(1, 14)));  // J = 0.7
  JoinFinderOptions strict;
  EXPECT_TRUE(JoinablePairFinder(tables, strict).FindAllPairs().empty());
  JoinFinderOptions loose;
  loose.jaccard_threshold = 0.7;
  auto pairs = JoinablePairFinder(tables, loose).FindAllPairs();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_NEAR(pairs[0].jaccard, 0.7, 1e-9);
  EXPECT_EQ(pairs[0].overlap, 14u);
}

// Property: the prefix-filtered search returns exactly the brute-force
// result on randomized corpora with planted overlaps.
class FinderPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FinderPropertyTest, MatchesBruteForce) {
  Rng rng(7000 + GetParam());
  std::vector<Table> tables;
  const size_t n_tables = 8 + rng.NextBounded(10);
  for (size_t t = 0; t < n_tables; ++t) {
    // Values drawn from a small shared universe so overlaps happen.
    std::set<int> values;
    const size_t target = 10 + rng.NextBounded(40);
    const int base = static_cast<int>(rng.NextBounded(3)) * 25;
    while (values.size() < target) {
      values.insert(base + static_cast<int>(rng.NextBounded(60)));
    }
    tables.push_back(OneColumn("t" + std::to_string(t),
                               std::vector<int>(values.begin(), values.end())));
  }
  JoinFinderOptions options;
  options.jaccard_threshold = 0.6 + rng.NextDouble() * 0.35;
  JoinablePairFinder finder(tables, options);
  auto fast = finder.FindAllPairs();
  auto slow = finder.FindAllPairsBruteForce();
  EXPECT_EQ(fast, slow);
}

INSTANTIATE_TEST_SUITE_P(RandomCorpora, FinderPropertyTest,
                         ::testing::Range(0, 20));

TEST(ExpansionTest, JoinOutputSizeMath) {
  // freq vectors: value -> multiplicity.
  std::vector<std::pair<uint32_t, uint32_t>> a = {{1, 2}, {2, 1}, {5, 3}};
  std::vector<std::pair<uint32_t, uint32_t>> b = {{1, 4}, {5, 2}, {7, 9}};
  // 2*4 + 3*2 = 14.
  EXPECT_EQ(JoinOutputSize(a, b), 14u);
  EXPECT_EQ(JoinOutputSize(a, {}), 0u);
}

TEST(ExpansionTest, KeyKeyJoinDoesNotGrow) {
  std::vector<Table> tables;
  tables.push_back(OneColumn("t1", Range(1, 30)));
  tables.push_back(OneColumn("t2", Range(1, 30)));
  JoinablePairFinder finder(tables);
  const auto& sets = finder.column_sets();
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_TRUE(sets[0].is_key);
  EXPECT_DOUBLE_EQ(ExpansionRatio(sets[0], sets[1]), 1.0);
}

TEST(ExpansionTest, NonKeyJoinGrows) {
  // Each value appears 3 times on both sides: output 10*9=90, larger table
  // 30 rows -> expansion 3.
  std::vector<int> v;
  for (int i = 1; i <= 10; ++i) {
    v.push_back(i);
    v.push_back(i);
    v.push_back(i);
  }
  std::vector<Table> tables;
  tables.push_back(OneColumn("t1", v));
  tables.push_back(OneColumn("t2", v));
  JoinablePairFinder finder(tables);
  const auto& sets = finder.column_sets();
  EXPECT_DOUBLE_EQ(ExpansionRatio(sets[0], sets[1]), 3.0);
}

TEST(HashJoinTest, MatchesAnalyticOutputSize) {
  Table left = MakeTable("l", {"k", "x"},
                         {{"a", "1"}, {"a", "2"}, {"b", "3"}, {"", "4"}});
  Table right = MakeTable("r", {"k", "y"},
                          {{"a", "10"}, {"b", "20"}, {"b", "30"}, {"c", "40"}});
  Table out = HashJoin(left, 0, right, 0, "out");
  // a: 2*1, b: 1*2 -> 4 rows; nulls never match.
  EXPECT_EQ(out.num_rows(), 4u);
  EXPECT_EQ(out.num_columns(), 3u);  // k, x, y
  // Name collision handling.
  Table out2 = HashJoin(left, 0, right, 1, "out2");
  EXPECT_EQ(out2.num_columns(), 3u);  // k, x, k_r
  EXPECT_EQ(out2.column(2).name(), "k_r");
}

TEST(HashJoinTest, RenameCollisionsGetNumberedSuffixes) {
  // Regression: one "_r" suffix was never re-checked against used_names,
  // so a left "x_r" plus duplicate right "x" columns produced duplicate
  // output names.
  Table left = MakeTable("l", {"k", "x", "x_r"}, {{"a", "1", "2"}});
  Table right = MakeTable("r", {"k", "x", "x"}, {{"a", "10", "20"}});
  Table out = HashJoin(left, 0, right, 0, "out");
  ASSERT_EQ(out.num_columns(), 5u);
  EXPECT_EQ(out.column(0).name(), "k");
  EXPECT_EQ(out.column(1).name(), "x");
  EXPECT_EQ(out.column(2).name(), "x_r");
  EXPECT_EQ(out.column(3).name(), "x_r2");
  EXPECT_EQ(out.column(4).name(), "x_r3");
  std::set<std::string> names;
  for (const auto& c : out.columns()) names.insert(c.name());
  EXPECT_EQ(names.size(), out.num_columns());
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.column(3).ValueAt(0), "10");
  EXPECT_EQ(out.column(4).ValueAt(0), "20");
}

std::vector<Table> SamplerCorpus() {
  // Three groups of joinable tables across two "datasets", with key and
  // non-key columns and varied sizes.
  std::vector<Table> tables;
  Rng rng(99);
  for (int t = 0; t < 30; ++t) {
    std::vector<std::vector<std::string>> rows;
    const size_t n = t % 3 == 0 ? 30 : (t % 3 == 1 ? 300 : 2000);
    for (size_t i = 0; i < n; ++i) {
      rows.push_back({std::to_string(i % 25),  // non-key, J=1 across tables
                      std::to_string(i),       // key, sizes differ
                      "x" + std::to_string(rng.NextBounded(3))});
    }
    // Vary a column name so schemas differ between consecutive tables.
    Table table = MakeTable("t" + std::to_string(t),
                            {"cat", "id", "flag_" + std::to_string(t % 5)},
                            rows);
    table.set_dataset_id("ds" + std::to_string(t % 7));
    tables.push_back(std::move(table));
  }
  return tables;
}

TEST(PairSamplerTest, QuotasAndExclusions) {
  std::vector<Table> tables = SamplerCorpus();
  JoinablePairFinder finder(tables);
  auto pairs = finder.FindAllPairs();
  ASSERT_GT(pairs.size(), 0u);
  JoinSamplerOptions options;
  options.per_size_bucket = 12;
  options.per_sub_bucket = 4;
  auto sample = SampleJoinablePairs(tables, finder.column_sets(), pairs,
                                    options);
  // Quota accounting.
  std::map<int, size_t> per_bucket;
  std::map<std::pair<int, int>, size_t> per_cell;
  std::set<std::pair<ColumnRef, ColumnRef>> seen;
  std::map<uint64_t, int> fp;
  for (const auto& s : sample) {
    ++per_bucket[s.size_bucket];
    ++per_cell[{s.size_bucket, static_cast<int>(s.key_combo)}];
    // No duplicates.
    auto key = std::minmax(s.pair.a, s.pair.b);
    EXPECT_TRUE(seen.insert({key.first, key.second}).second);
    // Same-schema pairs excluded.
    EXPECT_NE(tables[s.pair.a.table].GetSchema().Fingerprint(),
              tables[s.pair.b.table].GetSchema().Fingerprint());
    // Size bucket consistent with T1's or T2's rows (sampler picks T1
    // first; bucket must match one side).
    const int ba = SizeBucketOf(tables[s.pair.a.table].num_rows());
    const int bb = SizeBucketOf(tables[s.pair.b.table].num_rows());
    EXPECT_TRUE(s.size_bucket == ba || s.size_bucket == bb);
  }
  for (const auto& [bucket, count] : per_bucket) {
    EXPECT_LE(count, options.per_size_bucket);
  }
  for (const auto& [cell, count] : per_cell) {
    EXPECT_LE(count, options.per_sub_bucket);
  }
}

TEST(PairSamplerTest, DeterministicUnderSeed) {
  std::vector<Table> tables = SamplerCorpus();
  JoinablePairFinder finder(tables);
  auto pairs = finder.FindAllPairs();
  JoinSamplerOptions options;
  options.seed = 5;
  auto a = SampleJoinablePairs(tables, finder.column_sets(), pairs, options);
  auto b = SampleJoinablePairs(tables, finder.column_sets(), pairs, options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].pair, b[i].pair);
}

TEST(PairSamplerTest, UnprofiledColumnsAreExcludedNotDefaultBinned) {
  // Regression: the keyness lookup used operator[], which default-inserts
  // `false` — a pair whose column had no value-set entry was silently
  // stratified as if both sides were non-key. Such pairs cannot be
  // keyness-stratified at all and must be excluded from the sample.
  std::vector<Table> tables;
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 30; ++i) rows.push_back({std::to_string(i)});
  tables.push_back(MakeTable("t0", {"id"}, rows));
  tables.push_back(MakeTable("t1", {"id_ref"}, rows));

  JoinablePairFinder finder(tables);
  const auto pairs = finder.FindAllPairs();
  ASSERT_EQ(pairs.size(), 1u);

  // Control: with full profiles the pair samples (as a key-key pair).
  const auto full =
      SampleJoinablePairs(tables, finder.column_sets(), pairs, {});
  ASSERT_EQ(full.size(), 1u);
  EXPECT_EQ(full[0].key_combo, KeyCombination::kKeyKey);

  // Drop one endpoint's profile: the pair must now be excluded, not
  // binned under a fabricated non-key default.
  std::vector<ColumnValueSet> partial;
  for (const ColumnValueSet& s : finder.column_sets()) {
    if (!(s.ref == pairs[0].b)) partial.push_back(s);
  }
  ASSERT_EQ(partial.size(), finder.column_sets().size() - 1);
  const auto sample = SampleJoinablePairs(tables, partial, pairs, {});
  EXPECT_TRUE(sample.empty());
}

TEST(SizeBucketTest, PaperBuckets) {
  EXPECT_EQ(SizeBucketOf(5), -1);
  EXPECT_EQ(SizeBucketOf(10), -1);
  EXPECT_EQ(SizeBucketOf(11), 0);
  EXPECT_EQ(SizeBucketOf(99), 0);
  EXPECT_EQ(SizeBucketOf(100), 1);
  EXPECT_EQ(SizeBucketOf(999), 1);
  EXPECT_EQ(SizeBucketOf(1000), 2);
}

TEST(JoinLabelsTest, Names) {
  EXPECT_STREQ(JoinLabelName(JoinLabel::kUseful), "useful");
  EXPECT_STREQ(JoinLabelName(JoinLabel::kRelatedAccidental), "R-Acc");
  EXPECT_STREQ(JoinLabelName(JoinLabel::kUnrelatedAccidental), "U-Acc");
  EXPECT_EQ(CombineKeyness(true, true), KeyCombination::kKeyKey);
  EXPECT_EQ(CombineKeyness(true, false), KeyCombination::kKeyNonkey);
  EXPECT_EQ(CombineKeyness(false, true), KeyCombination::kKeyNonkey);
  EXPECT_EQ(CombineKeyness(false, false), KeyCombination::kNonkeyNonkey);
}

}  // namespace
}  // namespace ogdp::join
