// Tests for the fault-injected fetch layer: fault-schedule determinism
// and spec parsing, exponential backoff + jitter, the circuit breaker's
// three-state lifecycle, the retry loop's client-side integrity checks,
// ingestion stage accounting on a mixed-fate portal, and end-to-end
// fault-equivalence of the full analysis pipeline (transient faults may
// only change retry telemetry, never the analysis bytes).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/analysis.h"
#include "core/analysis_suite.h"
#include "core/ingestion.h"
#include "core/portal_model.h"
#include "corpus/generator.h"
#include "corpus/portal_profile.h"
#include "fetch/fault_schedule.h"
#include "fetch/retry.h"
#include "fetch/transport.h"
#include "util/hash.h"
#include "util/rng.h"

namespace ogdp::fetch {
namespace {

// ------------------------------------------------------- fault schedule

TEST(FaultProfileTest, ParsesFullSpec) {
  auto profile = ParseFaultProfile(
      "timeout=0.1,5xx=0.05,429=0.2,truncate=0.05,slow=0.02,"
      "checksum=0.03,permanent=0.01,max=2,seed=42");
  ASSERT_TRUE(profile.ok()) << profile.status();
  EXPECT_DOUBLE_EQ(profile->timeout_rate, 0.1);
  EXPECT_DOUBLE_EQ(profile->http5xx_rate, 0.05);
  EXPECT_DOUBLE_EQ(profile->rate_limit_rate, 0.2);
  EXPECT_DOUBLE_EQ(profile->truncated_rate, 0.05);
  EXPECT_DOUBLE_EQ(profile->slow_read_rate, 0.02);
  EXPECT_DOUBLE_EQ(profile->checksum_rate, 0.03);
  EXPECT_DOUBLE_EQ(profile->permanent_rate, 0.01);
  EXPECT_EQ(profile->max_transient_faults, 2u);
  EXPECT_EQ(profile->seed, 42u);
  EXPECT_TRUE(profile->any());
}

TEST(FaultProfileTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(ParseFaultProfile("timeout=1.5").ok());  // rate > 1
  EXPECT_FALSE(ParseFaultProfile("bogus=0.1").ok());    // unknown key
  EXPECT_FALSE(ParseFaultProfile("timeout=abc").ok());  // not a number
  EXPECT_FALSE(ParseFaultProfile("timeout").ok());      // no '='
  auto empty = ParseFaultProfile("");
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty->any());
}

TEST(FaultProfileTest, ParsesCdnCouplingKeys) {
  auto profile = ParseFaultProfile("cdn_group=2,cdn_429=0.5,cdn_window=1000");
  ASSERT_TRUE(profile.ok()) << profile.status();
  EXPECT_EQ(profile->cdn_group, 2u);
  EXPECT_DOUBLE_EQ(profile->cdn_429_boost, 0.5);
  EXPECT_EQ(profile->cdn_window_ms, 1000u);
  // A boost alone makes the profile fault-capable.
  EXPECT_TRUE(profile->any());
  EXPECT_FALSE(ParseFaultProfile("cdn_429=1.5").ok());  // rate > 1
}

TEST(FaultScheduleTest, CdnBurstsCoupleOnlyAcrossPortalsInOneGroup) {
  CdnState cdn;
  cdn.Note429(/*group=*/1, "A", /*now_ms=*/1000);

  // A portal never couples with its own bursts.
  EXPECT_FALSE(cdn.CoupledBurstActive(1, "A", 1000, 500));
  // A different portal in the group does, by absolute virtual-time
  // distance in either direction (per-portal clocks are independent).
  EXPECT_TRUE(cdn.CoupledBurstActive(1, "B", 1000, 500));
  EXPECT_TRUE(cdn.CoupledBurstActive(1, "B", 1400, 500));
  EXPECT_TRUE(cdn.CoupledBurstActive(1, "B", 600, 500));
  EXPECT_FALSE(cdn.CoupledBurstActive(1, "B", 1600, 500));  // past the window
  EXPECT_FALSE(cdn.CoupledBurstActive(1, "B", 400, 500));
  // Other groups never see the burst.
  EXPECT_FALSE(cdn.CoupledBurstActive(2, "B", 1000, 500));

  // A newer burst from the same portal refreshes its window.
  cdn.Note429(1, "A", 3000);
  EXPECT_TRUE(cdn.CoupledBurstActive(1, "B", 3200, 500));
}

TEST(FaultScheduleTest, ScriptsAreDeterministicPerResource) {
  FaultProfile profile;
  profile.timeout_rate = 0.4;
  profile.http5xx_rate = 0.4;
  profile.seed = 7;
  FaultSchedule schedule(profile);

  const auto a1 = schedule.ScriptFor("SG", "ds1", "a.csv");
  const auto a2 = schedule.ScriptFor("SG", "ds1", "a.csv");
  ASSERT_EQ(a1.size(), a2.size());
  for (size_t i = 0; i < a1.size(); ++i) {
    EXPECT_EQ(a1[i].kind, a2[i].kind);
    EXPECT_EQ(a1[i].http_status, a2[i].http_status);
    EXPECT_EQ(a1[i].retry_after_ms, a2[i].retry_after_ms);
  }

  // Scripts are salted by the resource coordinates: across many
  // resources at these rates, at least one script must differ from
  // a.csv's (equality of all of them would mean the salt is ignored).
  bool any_differs = false;
  for (int r = 0; r < 32 && !any_differs; ++r) {
    const auto other =
        schedule.ScriptFor("SG", "ds1", "b" + std::to_string(r) + ".csv");
    if (other.size() != a1.size()) {
      any_differs = true;
      break;
    }
    for (size_t i = 0; i < other.size(); ++i) {
      any_differs |= other[i].kind != a1[i].kind;
    }
  }
  EXPECT_TRUE(any_differs);
}

TEST(FaultScheduleTest, ForcedPermanentResourcesAreHonoured) {
  FaultProfile profile;
  profile.force_permanent.emplace_back("ds1", "dead.csv");
  FaultSchedule schedule(profile);
  EXPECT_TRUE(schedule.IsPermanent("SG", "ds1", "dead.csv"));
  EXPECT_FALSE(schedule.IsPermanent("SG", "ds1", "alive.csv"));
  EXPECT_FALSE(schedule.IsPermanent("SG", "ds2", "dead.csv"));
}

// -------------------------------------------------------------- backoff

TEST(BackoffTest, BaseGrowsExponentiallyAndClamps) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 100;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 1000;
  EXPECT_EQ(BackoffBaseMs(policy, 0), 100u);
  EXPECT_EQ(BackoffBaseMs(policy, 1), 200u);
  EXPECT_EQ(BackoffBaseMs(policy, 2), 400u);
  EXPECT_EQ(BackoffBaseMs(policy, 3), 800u);
  EXPECT_EQ(BackoffBaseMs(policy, 4), 1000u);  // clamped
  EXPECT_EQ(BackoffBaseMs(policy, 10), 1000u);
}

TEST(BackoffTest, JitteredDelayIsDeterministicAndBounded) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 1000;
  policy.jitter = 0.25;
  Rng a(99);
  Rng b(99);
  for (size_t r = 0; r < 8; ++r) {
    const uint64_t da = BackoffDelayMs(policy, r, a);
    const uint64_t db = BackoffDelayMs(policy, r, b);
    EXPECT_EQ(da, db);  // same seed, same sequence
    const uint64_t base = BackoffBaseMs(policy, r);
    EXPECT_GE(da, base - base / 4);
    EXPECT_LE(da, base + base / 4);
  }
}

// ------------------------------------------------------ circuit breaker

TEST(CircuitBreakerTest, OpensHalfOpensAndCloses) {
  RetryPolicy policy;
  policy.breaker_threshold = 3;
  policy.breaker_open_ms = 500;
  CircuitBreaker breaker(policy);

  EXPECT_EQ(breaker.state(0), CircuitBreaker::State::kClosed);
  breaker.OnFailure(10);
  breaker.OnFailure(20);
  EXPECT_EQ(breaker.state(20), CircuitBreaker::State::kClosed);
  breaker.OnFailure(30);  // third consecutive failure: trip
  EXPECT_EQ(breaker.state(30), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_FALSE(breaker.Allow(100));
  EXPECT_EQ(breaker.RetryAtMs(100), 530u);

  // Half-open at opened_at + open_ms: exactly one probe admitted.
  EXPECT_EQ(breaker.state(530), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.Allow(530));
  EXPECT_FALSE(breaker.Allow(531));  // probe already in flight

  // Probe success closes the breaker and resets the failure count.
  breaker.OnSuccess(540);
  EXPECT_EQ(breaker.state(540), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 0u);
  EXPECT_TRUE(breaker.Allow(541));
}

TEST(CircuitBreakerTest, FailedProbeReopensForAFreshWindow) {
  RetryPolicy policy;
  policy.breaker_threshold = 2;
  policy.breaker_open_ms = 100;
  CircuitBreaker breaker(policy);
  breaker.OnFailure(0);
  breaker.OnFailure(0);
  EXPECT_EQ(breaker.trips(), 1u);
  ASSERT_TRUE(breaker.Allow(100));  // half-open probe
  breaker.OnFailure(100);           // probe fails
  EXPECT_EQ(breaker.trips(), 2u);
  EXPECT_EQ(breaker.state(150), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.RetryAtMs(150), 200u);  // fresh window from the probe
}

TEST(CircuitBreakerTest, ZeroThresholdDisablesTheBreaker) {
  RetryPolicy policy;
  policy.breaker_threshold = 0;
  CircuitBreaker breaker(policy);
  for (int i = 0; i < 100; ++i) breaker.OnFailure(i);
  EXPECT_EQ(breaker.state(100), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.trips(), 0u);
}

// ----------------------------------------------------------- retry loop

// Scripted transport: attempt i replies with replies[min(i, size-1)].
class ScriptedTransport : public Transport {
 public:
  explicit ScriptedTransport(std::vector<FetchReply> replies)
      : replies_(std::move(replies)) {}

  FetchReply Fetch(const FetchRequest&, size_t attempt) override {
    return replies_[std::min(attempt, replies_.size() - 1)];
  }

 private:
  std::vector<FetchReply> replies_;
};

FetchReply OkReply(const std::string& body) {
  FetchReply reply;
  reply.body = body;
  reply.declared_length = body.size();
  reply.declared_checksum = Fnv1a64(body);
  reply.latency_ms = 10;
  return reply;
}

FetchReply TransientFailure() {
  FetchReply reply;
  reply.status = Status::Unavailable("HTTP 503");
  reply.fault = FaultKind::kHttp5xx;
  reply.latency_ms = 10;
  reply.retryable = true;
  return reply;
}

FetchRequest TestRequest() {
  FetchRequest request;
  request.portal = "T";
  request.dataset_id = "ds";
  request.resource_name = "r.csv";
  return request;
}

TEST(FetchWithRetryTest, SucceedsAfterTransientFailures) {
  ScriptedTransport transport(
      {TransientFailure(), TransientFailure(), OkReply("a,b\n1,2\n")});
  RetryPolicy policy;
  policy.initial_backoff_ms = 50;
  uint64_t clock_ms = 0;
  Rng rng(1);
  const FetchOutcome out = FetchWithRetry(transport, TestRequest(), policy,
                                          nullptr, &clock_ms, rng);
  ASSERT_TRUE(out.status.ok()) << out.status;
  EXPECT_EQ(out.body, "a,b\n1,2\n");
  EXPECT_EQ(out.attempts, 3u);
  EXPECT_EQ(out.retries, 2u);
  EXPECT_GT(out.backoff_ms_total, 0u);
  EXPECT_GT(clock_ms, out.backoff_ms_total);  // latency advanced too
  ASSERT_EQ(out.log.size(), 3u);
  EXPECT_FALSE(out.log[0].status.ok());
  EXPECT_TRUE(out.log[2].status.ok());
}

TEST(FetchWithRetryTest, NonRetryableFailureStopsImmediately) {
  FetchReply dead;
  dead.status = Status::NotFound("HTTP 404");
  dead.latency_ms = 5;
  dead.retryable = false;
  ScriptedTransport transport({dead});
  RetryPolicy policy;
  uint64_t clock_ms = 0;
  Rng rng(1);
  const FetchOutcome out = FetchWithRetry(transport, TestRequest(), policy,
                                          nullptr, &clock_ms, rng);
  EXPECT_EQ(out.status.code(), StatusCode::kNotFound);
  EXPECT_EQ(out.attempts, 1u);
  EXPECT_EQ(out.retries, 0u);
  EXPECT_EQ(out.backoff_ms_total, 0u);
}

TEST(FetchWithRetryTest, ExhaustionReportsTheLastCause) {
  ScriptedTransport transport({TransientFailure()});
  RetryPolicy policy;
  policy.max_attempts = 3;
  uint64_t clock_ms = 0;
  Rng rng(1);
  const FetchOutcome out = FetchWithRetry(transport, TestRequest(), policy,
                                          nullptr, &clock_ms, rng);
  EXPECT_EQ(out.status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(out.status.message().find("HTTP 503"), std::string::npos);
  EXPECT_EQ(out.attempts, 3u);
  EXPECT_EQ(out.retries, 2u);
}

TEST(FetchWithRetryTest, DeadlineCutsTheLoopShort) {
  ScriptedTransport transport({TransientFailure()});
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.initial_backoff_ms = 1000;
  policy.jitter = 0.0;
  policy.resource_deadline_ms = 2500;
  uint64_t clock_ms = 0;
  Rng rng(1);
  const FetchOutcome out = FetchWithRetry(transport, TestRequest(), policy,
                                          nullptr, &clock_ms, rng);
  EXPECT_EQ(out.status.code(), StatusCode::kDeadlineExceeded);
  // 1000 + 2000 ms of backoff blows the 2500 ms budget after attempt 3's
  // scheduling, far below the 100-attempt cap.
  EXPECT_LT(out.attempts, 5u);
}

TEST(FetchWithRetryTest, DetectsTruncatedAndCorruptBodies) {
  // HTTP 200 with a short body, then HTTP 200 with a corrupt body, then a
  // clean reply: the client-side checks must classify both as retryable
  // DataLoss and end up with the verified bytes.
  const std::string content = "a,b\n1,2\n";
  FetchReply truncated = OkReply(content);
  truncated.body = content.substr(0, 3);
  FetchReply corrupt = OkReply(content);
  corrupt.body[0] ^= 0x20;
  ScriptedTransport transport({truncated, corrupt, OkReply(content)});
  RetryPolicy policy;
  policy.initial_backoff_ms = 1;
  uint64_t clock_ms = 0;
  Rng rng(1);
  const FetchOutcome out = FetchWithRetry(transport, TestRequest(), policy,
                                          nullptr, &clock_ms, rng);
  ASSERT_TRUE(out.status.ok()) << out.status;
  EXPECT_EQ(out.body, content);
  ASSERT_EQ(out.log.size(), 3u);
  EXPECT_EQ(out.log[0].status.code(), StatusCode::kDataLoss);
  EXPECT_EQ(out.log[0].fault, FaultKind::kTruncatedBody);
  EXPECT_EQ(out.log[1].status.code(), StatusCode::kDataLoss);
  EXPECT_EQ(out.log[1].fault, FaultKind::kChecksumMismatch);
}

TEST(FetchWithRetryTest, WaitsOutAnOpenBreakerInsteadOfFailing) {
  ScriptedTransport transport(
      {TransientFailure(), TransientFailure(), OkReply("x\n1\n")});
  RetryPolicy policy;
  policy.initial_backoff_ms = 1;
  policy.breaker_threshold = 2;
  policy.breaker_open_ms = 1000;
  CircuitBreaker breaker(policy);
  uint64_t clock_ms = 0;
  Rng rng(1);
  const FetchOutcome out = FetchWithRetry(transport, TestRequest(), policy,
                                          &breaker, &clock_ms, rng);
  ASSERT_TRUE(out.status.ok()) << out.status;
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_GT(out.breaker_waits, 0u);
  EXPECT_GE(clock_ms, 1000u);  // waited to the half-open time
}

}  // namespace
}  // namespace ogdp::fetch

// ---------------------------------------------------- ingestion + suite

namespace ogdp::core {
namespace {

// One resource per ingestion fate (mirrors core_test's TinyPortal, plus a
// second dataset so permanent-failure containment can be scoped).
Portal MixedFatePortal() {
  Portal portal;
  portal.name = "M";
  Dataset ds;
  ds.id = "mx-1";
  ds.topic = "transport";
  ds.publication_year = 2021;

  Resource good;
  good.name = "good.csv";
  good.claimed_format = "CSV";
  good.content = "id,v\n1,2\n3,4\n";
  ds.resources.push_back(good);

  Resource gone;
  gone.name = "gone.csv";
  gone.claimed_format = "CSV";
  gone.downloadable = false;
  ds.resources.push_back(gone);

  Resource html;
  html.name = "error.csv";
  html.claimed_format = "CSV";
  html.content = "<!DOCTYPE html><html><body>503</body></html>";
  ds.resources.push_back(html);

  Resource wide;
  wide.name = "wide.csv";
  wide.claimed_format = "CSV";
  {
    std::string header, row;
    for (int i = 0; i < 120; ++i) {
      header += (i ? "," : "") + ("c" + std::to_string(i));
      row += (i ? "," : "") + std::to_string(i);
    }
    wide.content = header + "\n" + row + "\n";
  }
  ds.resources.push_back(wide);
  portal.datasets.push_back(ds);

  Dataset other;
  other.id = "mx-2";
  other.topic = "health";
  other.publication_year = 2022;
  Resource second;
  second.name = "second.csv";
  second.claimed_format = "CSV";
  second.content = "k,w\n5,6\n7,8\n";
  other.resources.push_back(second);
  portal.datasets.push_back(other);
  return portal;
}

// Satellite check: the stage buckets must sum exactly — the accounting
// that used to rely on an "unreachable" switch arm is now an invariant
// verified on a portal exercising every fate at once.
TEST(IngestStatsInvariantsTest, MixedFatePortalBucketsSum) {
  const IngestResult r = IngestPortal(MixedFatePortal());
  EXPECT_TRUE(CheckIngestStatsInvariants(r.stats).ok());
  EXPECT_EQ(r.stats.total_tables, 5u);
  EXPECT_EQ(r.stats.total_tables,
            r.stats.downloadable_tables + r.stats.not_downloadable_tables);
  EXPECT_EQ(r.stats.downloadable_tables,
            r.stats.readable_tables + r.stats.rejected_not_csv +
                r.stats.rejected_parse);
  EXPECT_EQ(r.stats.not_downloadable_tables, 1u);
  EXPECT_EQ(r.stats.rejected_not_csv, 1u);
  EXPECT_EQ(r.stats.removed_wide_tables, 1u);
  EXPECT_EQ(r.stats.readable_tables, 3u);
  EXPECT_EQ(r.tables.size(), 2u);

  // The per-resource taxonomy covers every CSV-claimed resource, in
  // portal order, with a non-OK status exactly on the non-readable ones.
  ASSERT_EQ(r.resources.size(), 5u);
  EXPECT_EQ(r.resources[0].stage, IngestStage::kReadable);
  EXPECT_TRUE(r.resources[0].status.ok());
  EXPECT_EQ(r.resources[1].stage, IngestStage::kNotDownloadable);
  EXPECT_FALSE(r.resources[1].status.ok());
  EXPECT_EQ(r.resources[2].stage, IngestStage::kRejectedNotCsv);
  EXPECT_EQ(r.resources[3].stage, IngestStage::kRemovedWide);
  EXPECT_EQ(r.resources[4].stage, IngestStage::kReadable);
}

TEST(IngestStatsInvariantsTest, DetectsBrokenAccounting) {
  IngestStats stats;
  stats.total_tables = 3;
  stats.downloadable_tables = 2;
  stats.not_downloadable_tables = 1;
  stats.readable_tables = 2;
  EXPECT_TRUE(CheckIngestStatsInvariants(stats).ok());
  stats.rejected_parse = 1;  // now downloadable != readable + rejects
  EXPECT_FALSE(CheckIngestStatsInvariants(stats).ok());
}

fetch::FaultProfile AggressiveTransientProfile() {
  fetch::FaultProfile profile;
  profile.timeout_rate = 0.3;
  profile.http5xx_rate = 0.3;
  profile.rate_limit_rate = 0.2;
  profile.truncated_rate = 0.2;
  profile.slow_read_rate = 0.1;
  profile.checksum_rate = 0.1;
  profile.max_transient_faults = 2;
  profile.seed = 11;
  return profile;
}

IngestOptions AggressiveTransientOptions() {
  IngestOptions options;
  options.faults = AggressiveTransientProfile();
  options.retry.max_attempts = 4;  // > max_transient_faults + 1
  options.retry.initial_backoff_ms = 10;
  options.retry.breaker_threshold = 3;
  options.retry.breaker_open_ms = 200;
  return options;
}

// Tentpole acceptance: on the SG corpus demo portal, an aggressive
// transient fault profile must leave the analysis byte-identical to the
// fault-free run (telemetry rows excluded) while the telemetry proves the
// machinery actually fired.
TEST(FetchFaultEquivalenceTest, SgDemoPortalSurvivesTransientFaults) {
  corpus::CorpusGenerator generator(corpus::SgPortalProfile(), 0.04);
  corpus::GeneratedPortal generated = generator.Generate();

  PortalBundle clean;
  clean.name = generated.portal.name;
  clean.portal = generated.portal;
  clean.truth = generated.truth;
  IngestOptions clean_options;
  clean_options.faults = fetch::FaultProfile{};  // explicit: env-proof
  clean.ingest = IngestPortal(clean.portal, clean_options);

  PortalBundle faulty = clean;
  faulty.ingest = IngestPortal(faulty.portal, AggressiveTransientOptions());

  // The machinery fired...
  EXPECT_GT(faulty.ingest.stats.fetch_retries, 0u);
  EXPECT_GT(faulty.ingest.stats.fetch_backoff_ms, 0u);
  EXPECT_GT(faulty.ingest.stats.breaker_trips, 0u);
  EXPECT_EQ(faulty.ingest.stats.fetch_permanent_failures, 0u);

  // ...and changed nothing: same tables, byte for byte.
  ASSERT_EQ(faulty.ingest.tables.size(), clean.ingest.tables.size());
  for (size_t i = 0; i < clean.ingest.tables.size(); ++i) {
    EXPECT_EQ(faulty.ingest.tables[i].ToCsvString(),
              clean.ingest.tables[i].ToCsvString());
  }

  // Full-pipeline render comparison with telemetry rows excluded; the
  // telemetry-including render must differ and show the retry counters.
  const PortalAnalysis clean_analysis = RunFullAnalysis(clean);
  const PortalAnalysis faulty_analysis = RunFullAnalysis(faulty);
  EXPECT_FALSE(faulty_analysis.degraded);
  EXPECT_EQ(RenderPortalAnalysis(faulty_analysis, false),
            RenderPortalAnalysis(clean_analysis, false));
  const std::string with_telemetry =
      RenderPortalAnalysis(faulty_analysis, true);
  EXPECT_NE(with_telemetry.find("fetch attempts / retries"),
            std::string::npos);
  EXPECT_NE(with_telemetry.find("circuit breaker trips / waits"),
            std::string::npos);
}

// Graceful degradation: a permanently failing resource removes exactly
// itself — the run completes, its record carries a non-OK Status, and the
// other dataset's table is untouched.
TEST(FetchFaultEquivalenceTest, PermanentFailureDegradesGracefully) {
  const Portal portal = MixedFatePortal();
  IngestOptions clean_options;
  clean_options.faults = fetch::FaultProfile{};
  const IngestResult clean = IngestPortal(portal, clean_options);

  IngestOptions failing_options = clean_options;
  fetch::FaultProfile profile;
  profile.force_permanent.emplace_back("mx-1", "good.csv");
  failing_options.faults = profile;
  failing_options.retry.max_attempts = 3;
  failing_options.retry.initial_backoff_ms = 10;
  const IngestResult degraded = IngestPortal(portal, failing_options);

  EXPECT_TRUE(CheckIngestStatsInvariants(degraded.stats).ok());
  EXPECT_EQ(degraded.stats.fetch_permanent_failures, 1u);
  EXPECT_EQ(degraded.stats.readable_tables, clean.stats.readable_tables - 1);
  ASSERT_EQ(degraded.tables.size(), clean.tables.size() - 1);

  // The failed resource's record explains the loss...
  const ResourceRecord& failed = degraded.resources[0];
  EXPECT_EQ(failed.resource_name, "good.csv");
  EXPECT_EQ(failed.stage, IngestStage::kFetchFailed);
  EXPECT_FALSE(failed.status.ok());
  EXPECT_GT(failed.attempts, 1u);

  // ...and the other dataset's table is byte-identical.
  EXPECT_EQ(degraded.tables.back().dataset_id(), "mx-2");
  EXPECT_EQ(degraded.tables.back().ToCsvString(),
            clean.tables.back().ToCsvString());

  // The analysis pipeline runs to completion and surfaces the failure.
  PortalBundle bundle;
  bundle.name = portal.name;
  bundle.portal = portal;
  bundle.ingest = degraded;
  const PortalAnalysis analysis = RunFullAnalysis(bundle);
  const std::string rendered = RenderPortalAnalysis(analysis);
  EXPECT_NE(rendered.find("-- failed resources --"), std::string::npos);
  EXPECT_NE(rendered.find("good.csv"), std::string::npos);
}

// Containment: a stage failure marks the analysis degraded and records a
// per-stage Status instead of aborting; the remaining stages still run.
TEST(StageContainmentTest, ForcedStageFailureIsContained) {
  PortalBundle bundle = MakePortalBundle(corpus::SgPortalProfile(), 0.03);
  AnalysisSuiteOptions options;
  options.fail_stages = {"fds"};
  const PortalAnalysis analysis = RunFullAnalysis(bundle, options);

  EXPECT_TRUE(analysis.degraded);
  size_t failed_stages = 0;
  for (const StageStatus& st : analysis.stages) {
    if (st.stage == "fds") {
      EXPECT_FALSE(st.status.ok());
      EXPECT_TRUE(st.degraded);
      ++failed_stages;
    } else {
      EXPECT_TRUE(st.status.ok()) << st.stage << ": " << st.status;
    }
  }
  EXPECT_EQ(failed_stages, 1u);

  // Non-failed sections still computed; the render names the casualty.
  EXPECT_GT(analysis.size.total_tables, 0u);
  EXPECT_GT(analysis.joins.total_tables, 0u);
  const std::string rendered = RenderPortalAnalysis(analysis);
  EXPECT_NE(rendered.find("-- degraded stages --"), std::string::npos);
  EXPECT_NE(rendered.find("fault injected into stage fds"),
            std::string::npos);
}

TEST(StageContainmentTest, NoFailureMeansNoDegradation) {
  PortalBundle bundle = MakePortalBundle(corpus::SgPortalProfile(), 0.03);
  const PortalAnalysis analysis = RunFullAnalysis(bundle);
  EXPECT_FALSE(analysis.degraded);
  ASSERT_EQ(analysis.stages.size(), 7u);
  for (const StageStatus& st : analysis.stages) {
    EXPECT_TRUE(st.status.ok()) << st.stage << ": " << st.status;
  }
}

// Shared-CDN coupling: with a coupled burst already active on the fabric
// and a certain boost, every clean first attempt is converted into one
// extra 429 — the breaker trips and the retry telemetry fires, but the
// delivered bytes are identical to the uncoupled run.
TEST(FetchFaultEquivalenceTest, CoupledCdnBurstsTripBreakerNotBytes) {
  const Portal portal = MixedFatePortal();
  IngestOptions clean_options;
  clean_options.faults = fetch::FaultProfile{};  // explicit: env-proof
  const IngestResult baseline = IngestPortal(portal, clean_options);

  // Another portal on the same CDN rate-limited at virtual time 0; a huge
  // window keeps the burst active for this whole ingest (every portal's
  // virtual clock starts at 0).
  fetch::CdnState cdn;
  cdn.Note429(/*group=*/1, "other_portal", /*now_ms=*/0);

  fetch::FaultProfile coupled;  // no faults of its own, only coupling
  coupled.cdn_group = 1;
  coupled.cdn_429_boost = 1.0;
  coupled.cdn_window_ms = 100000000;
  IngestOptions coupled_options = clean_options;
  coupled_options.faults = coupled;
  coupled_options.cdn = &cdn;
  coupled_options.retry.max_attempts = 4;
  coupled_options.retry.initial_backoff_ms = 10;
  coupled_options.retry.breaker_threshold = 1;  // every 429 trips it
  coupled_options.retry.breaker_open_ms = 50;
  const IngestResult coupled_run = IngestPortal(portal, coupled_options);

  // The coupling fired: injected 429s, retries, breaker trips — but the
  // cap of one injected 429 per resource means nothing fails permanently.
  EXPECT_TRUE(CheckIngestStatsInvariants(coupled_run.stats).ok());
  EXPECT_GT(coupled_run.stats.fetch_retries, 0u);
  EXPECT_GE(coupled_run.stats.breaker_trips, 1u);
  EXPECT_EQ(coupled_run.stats.fetch_permanent_failures, 0u);

  // Output bytes are untouched by the coupling.
  ASSERT_EQ(coupled_run.tables.size(), baseline.tables.size());
  for (size_t i = 0; i < baseline.tables.size(); ++i) {
    EXPECT_EQ(coupled_run.tables[i].ToCsvString(),
              baseline.tables[i].ToCsvString());
  }

  // Deterministic: an identically seeded fabric reproduces the telemetry.
  fetch::CdnState cdn2;
  cdn2.Note429(1, "other_portal", 0);
  IngestOptions replay_options = coupled_options;
  replay_options.cdn = &cdn2;
  const IngestResult replay = IngestPortal(portal, replay_options);
  EXPECT_EQ(replay.stats.fetch_attempts, coupled_run.stats.fetch_attempts);
  EXPECT_EQ(replay.stats.breaker_trips, coupled_run.stats.breaker_trips);

  // An uncoupled group id on the same fabric sees no burst: no injected
  // 429s, so no retries. (The portal's own 404 still trips the
  // threshold-1 breaker once, coupled or not, so compare relatively.)
  fetch::FaultProfile other_group = coupled;
  other_group.cdn_group = 2;
  IngestOptions unaffected_options = coupled_options;
  unaffected_options.faults = other_group;
  const IngestResult unaffected = IngestPortal(portal, unaffected_options);
  EXPECT_EQ(unaffected.stats.fetch_retries, 0u);
  EXPECT_GT(coupled_run.stats.breaker_trips, unaffected.stats.breaker_trips);
}

// Thread-count independence: the serial fetch stage pins the breaker and
// backoff Rng to one event order, so a faulty ingest is byte-identical
// under any OGDP_THREADS (the TSan lane runs this with real threads).
TEST(FetchFaultEquivalenceTest, FaultyIngestIsThreadCountIndependent) {
  corpus::CorpusGenerator generator(corpus::SgPortalProfile(), 0.03);
  const corpus::GeneratedPortal generated = generator.Generate();
  const IngestOptions options = AggressiveTransientOptions();
  const IngestResult a = IngestPortal(generated.portal, options);
  const IngestResult b = IngestPortal(generated.portal, options);
  ASSERT_EQ(a.tables.size(), b.tables.size());
  for (size_t i = 0; i < a.tables.size(); ++i) {
    EXPECT_EQ(a.tables[i].ToCsvString(), b.tables[i].ToCsvString());
  }
  EXPECT_EQ(a.stats.fetch_attempts, b.stats.fetch_attempts);
  EXPECT_EQ(a.stats.fetch_backoff_ms, b.stats.fetch_backoff_ms);
  EXPECT_EQ(a.stats.breaker_trips, b.stats.breaker_trips);
}

}  // namespace
}  // namespace ogdp::core
