// Tests for the from-scratch RLE and LZ77 codecs: round-trip properties,
// ratio behaviour on redundant vs random data, and corrupt-input handling.

#include <gtest/gtest.h>

#include "compress/codec.h"
#include "util/rng.h"

namespace ogdp::compress {
namespace {

class CodecRoundTripTest
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {
 protected:
  std::unique_ptr<Codec> MakeCodec() const {
    return std::string(std::get<0>(GetParam())) == "rle" ? MakeRleCodec()
                                                         : MakeLz77Codec();
  }
};

TEST_P(CodecRoundTripTest, RandomDataRoundTrips) {
  auto codec = MakeCodec();
  Rng rng(1000 + std::get<1>(GetParam()));
  std::string data;
  const size_t len = rng.NextBounded(5000);
  for (size_t i = 0; i < len; ++i) {
    data.push_back(static_cast<char>(rng.NextBounded(256)));
  }
  auto back = codec->Decompress(codec->Compress(data));
  ASSERT_TRUE(back.ok()) << codec->name();
  EXPECT_EQ(*back, data);
}

TEST_P(CodecRoundTripTest, RepetitiveDataRoundTrips) {
  auto codec = MakeCodec();
  Rng rng(2000 + std::get<1>(GetParam()));
  std::string data;
  const char* words[] = {"Ontario,", "Toronto,", "2021,", "health\n"};
  for (int i = 0; i < 500; ++i) data += words[rng.NextBounded(4)];
  auto back = codec->Decompress(codec->Compress(data));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

INSTANTIATE_TEST_SUITE_P(
    Codecs, CodecRoundTripTest,
    ::testing::Combine(::testing::Values("rle", "lz77"),
                       ::testing::Range(0, 10)));

TEST(CodecTest, EmptyInput) {
  std::vector<std::unique_ptr<Codec>> codecs;
  codecs.push_back(MakeRleCodec());
  codecs.push_back(MakeLz77Codec());
  for (const auto& codec : codecs) {
    auto back = codec->Decompress(codec->Compress(""));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, "");
    EXPECT_DOUBLE_EQ(CompressionRatio(*codec, ""), 1.0);
  }
}

TEST(RleTest, CompressesRuns) {
  auto codec = MakeRleCodec();
  const std::string runs(10000, 'x');
  EXPECT_GT(CompressionRatio(*codec, runs), 100.0);
}

TEST(RleTest, RejectsCorrupt) {
  auto codec = MakeRleCodec();
  EXPECT_FALSE(codec->Decompress("x").ok());                      // odd length
  EXPECT_FALSE(codec->Decompress(std::string("\x00y", 2)).ok());  // zero run
}

TEST(Lz77Test, CompressesRedundantCsvWell) {
  // The Table 1 claim: OGDP CSVs compress ~5:1 because values repeat.
  std::string csv = "city,province,amount\n";
  Rng rng(77);
  const char* cities[] = {"Waterloo", "Toronto", "Montreal", "Victoria"};
  const char* provs[] = {"Ontario", "Ontario", "Quebec", "British Columbia"};
  for (int i = 0; i < 2000; ++i) {
    const size_t c = rng.NextBounded(4);
    csv += cities[c];
    csv += ',';
    csv += provs[c];
    csv += ',';
    csv += std::to_string(rng.NextBounded(100));
    csv += '\n';
  }
  auto codec = MakeLz77Codec();
  EXPECT_GT(CompressionRatio(*codec, csv), 3.0);
}

TEST(Lz77Test, LongMatchesAcrossWindow) {
  // A 64 KiB+ periodic input exercises window wrap-around.
  std::string data;
  for (int i = 0; i < 3000; ++i) {
    data += "block-" + std::to_string(i % 7) + ";";
  }
  auto codec = MakeLz77Codec();
  auto back = codec->Decompress(codec->Compress(data));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST(Lz77Test, OverlappingMatchDecodes) {
  // "aaaa..." forces matches that overlap their own output.
  const std::string data(500, 'a');
  auto codec = MakeLz77Codec();
  auto back = codec->Decompress(codec->Compress(data));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST(Lz77Test, RejectsCorrupt) {
  auto codec = MakeLz77Codec();
  // Match referring before the start of output.
  std::string bogus;
  bogus.push_back(static_cast<char>(0x80));  // match, len 4
  bogus.push_back(5);                        // offset 5 but output empty
  bogus.push_back(0);
  EXPECT_FALSE(codec->Decompress(bogus).ok());
  // Truncated literal run.
  std::string trunc;
  trunc.push_back(10);  // 11 literals promised
  trunc += "abc";
  EXPECT_FALSE(codec->Decompress(trunc).ok());
}

}  // namespace
}  // namespace ogdp::compress
