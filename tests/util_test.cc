// Tests for Status/Result, the deterministic RNG, string utilities, and
// hashing.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/hash.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"

namespace ogdp {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad quote");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad quote");
  EXPECT_EQ(s.ToString(), "parse_error: bad quote");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto fails = []() -> Status { return Status::NotFound("x"); };
  auto wrapper = [&]() -> Status {
    OGDP_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::IoError("disk");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto maker = [](bool ok) -> Result<std::string> {
    if (ok) return std::string("value");
    return Status::Internal("nope");
  };
  auto user = [&](bool ok) -> Result<size_t> {
    std::string s;
    OGDP_ASSIGN_OR_RETURN(s, maker(ok));
    return s.size();
  };
  ASSERT_TRUE(user(true).ok());
  EXPECT_EQ(*user(true), 5u);
  EXPECT_EQ(user(false).status().code(), StatusCode::kInternal);
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
  // Different seeds diverge (overwhelmingly likely on the first draw).
  EXPECT_NE(Rng(123).NextUint64(), c.NextUint64());
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(13), 13u);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(8);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoolProbabilityRoughlyRespected) {
  Rng rng(10);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.NextBool(0.25);
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
  EXPECT_FALSE(Rng(1).NextBool(0.0));
  EXPECT_TRUE(Rng(1).NextBool(1.0));
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ZipfIsSkewedAndInRange) {
  Rng rng(12);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 50000; ++i) {
    uint64_t k = rng.NextZipf(50, 1.1);
    ASSERT_LT(k, 50u);
    ++counts[k];
  }
  // Rank 0 must dominate rank 10 heavily under s=1.1.
  EXPECT_GT(counts[0], counts[10] * 5);
  // Every rank reachable in a big sample.
  EXPECT_GT(*std::min_element(counts.begin(), counts.end()), 0);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(13);
  std::vector<double> weights = {1, 0, 3};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.NextCategorical(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / 20000.0, 0.75, 0.02);
}

TEST(RngTest, SampleIndicesDistinctSortedAndComplete) {
  Rng rng(14);
  for (int trial = 0; trial < 50; ++trial) {
    auto idx = rng.SampleIndices(20, 7);
    ASSERT_EQ(idx.size(), 7u);
    EXPECT_TRUE(std::is_sorted(idx.begin(), idx.end()));
    EXPECT_EQ(std::set<size_t>(idx.begin(), idx.end()).size(), 7u);
    for (size_t i : idx) EXPECT_LT(i, 20u);
  }
  EXPECT_EQ(rng.SampleIndices(5, 50).size(), 5u);  // k clamped
}

TEST(RngTest, ForkIndependence) {
  Rng parent(99);
  Rng a = parent.Fork(1);
  Rng b = parent.Fork(2);
  Rng a2 = parent.Fork(1);
  EXPECT_EQ(a.NextUint64(), a2.NextUint64());
  EXPECT_NE(a.NextUint64(), b.NextUint64());
  Rng by_name = parent.Fork(std::string("alpha"));
  Rng by_name2 = parent.Fork(std::string("alpha"));
  EXPECT_EQ(by_name.NextUint64(), by_name2.NextUint64());
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  a b  "), "a b");
  EXPECT_EQ(Trim("\t\r\n"), "");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(TrimView(" x "), "x");
}

TEST(StringUtilTest, SplitAndJoin) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Join({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, CaseAndAffixes) {
  EXPECT_EQ(ToLower("MiXeD 123"), "mixed 123");
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
}

TEST(StringUtilTest, ParseInt64) {
  EXPECT_EQ(ParseInt64("42"), 42);
  EXPECT_EQ(ParseInt64(" -7 "), -7);
  EXPECT_EQ(ParseInt64("+13"), 13);
  EXPECT_FALSE(ParseInt64("").has_value());
  EXPECT_FALSE(ParseInt64("12x").has_value());
  EXPECT_FALSE(ParseInt64("1.5").has_value());
  EXPECT_FALSE(ParseInt64("99999999999999999999").has_value());
}

TEST(StringUtilTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("-2e3"), -2000.0);
  EXPECT_FALSE(ParseDouble("abc").has_value());
  EXPECT_FALSE(ParseDouble("1.2.3").has_value());
  EXPECT_FALSE(ParseDouble("nan").has_value());
  EXPECT_FALSE(ParseDouble("inf").has_value());
  EXPECT_FALSE(ParseDouble("0x10").has_value());
}

TEST(StringUtilTest, Formatting) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
  EXPECT_EQ(FormatPercent(0.841), "84.1%");
  EXPECT_EQ(FormatBytes(1588), "1.55 KiB");
  EXPECT_EQ(FormatDouble(1.5), "1.5");
  EXPECT_EQ(FormatDouble(0.00047, 2), "0.00047");
}

TEST(HashTest, Fnv1aStable) {
  // Known FNV-1a 64 vectors.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("acb"));
}

TEST(HashTest, CombineAndMixSpread) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
  EXPECT_NE(MixUint64(1), MixUint64(2));
}

}  // namespace
}  // namespace ogdp
