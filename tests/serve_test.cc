// Tests for the table-search serving layer: snapshot build determinism,
// top-k agreement with the brute-force reference, deterministic budget
// degradation, snapshot-swap refresh under concurrent readers (the TSan
// target), and the request scheduler's drain-on-shutdown guarantee.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "serve/brute_force.h"
#include "serve/index_snapshot.h"
#include "serve/query_engine.h"
#include "serve/scheduler.h"
#include "serve/snapshot_registry.h"
#include "table/table.h"
#include "util/parallel.h"

namespace ogdp::serve {
namespace {

using table::Table;

Table MakeTable(const std::string& name, const std::string& dataset,
                const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows) {
  auto t = Table::FromRecords(name, header, rows);
  EXPECT_TRUE(t.ok());
  t->set_dataset_id(dataset);
  return std::move(t).value();
}

// A one-column table of `count` categorical values cat<lo>..cat<lo+count-1>,
// skipping `skip` (0 = none). Distinct counts stay >= the finder's
// eligibility floor and overlaps land above the 0.9 Jaccard threshold.
Table IdTable(const std::string& name, const std::string& dataset,
              const std::string& column, int lo, int count, int skip) {
  std::vector<std::vector<std::string>> rows;
  for (int i = lo; static_cast<int>(rows.size()) < count; ++i) {
    if (i == skip) continue;
    rows.push_back({"cat" + std::to_string(i)});
  }
  return MakeTable(name, dataset, {column}, rows);
}

// Join cluster (segment ids with J = 1 and J ~ 0.905), a three-member
// exact-union group, and distinctive names for keyword queries.
std::vector<Table> ServeCorpus() {
  std::vector<Table> tables;
  tables.push_back(
      IdTable("traffic counts", "transport", "segment_id", 1, 20, 0));
  tables.push_back(
      IdTable("traffic speed", "transport", "segment_ref", 1, 20, 0));
  tables.push_back(IdTable("accident sites", "safety", "segment", 1, 20, 7));
  for (int i = 0; i < 3; ++i) {
    tables.push_back(MakeTable("budget " + std::to_string(2020 + i), "finance",
                               {"year", "value"},
                               {{"2020", "1.5"}, {"2021", "2.5"}}));
  }
  return tables;
}

ServeOptions PinnedOptions(size_t shards = 3) {
  ServeOptions options;
  options.shards = shards;  // env-proof: never consult OGDP_SERVE_SHARDS
  return options;
}

// Unlimited but env-proof: never consult OGDP_QUERY_BUDGET_MS.
QueryBudget Unlimited() {
  QueryBudget b;
  b.time_budget_ms = 0;
  return b;
}

bool SameJoinHit(const JoinHit& a, const JoinHit& b) {
  return a.query_column.table == b.query_column.table &&
         a.query_column.column == b.query_column.column &&
         a.match.table == b.match.table && a.match.column == b.match.column &&
         a.jaccard == b.jaccard && a.score == b.score;
}

TEST(IndexSnapshotTest, BuildIsDeterministicAcrossThreadCounts) {
  const std::vector<Table> tables = ServeCorpus();
  const size_t ambient = util::GlobalThreadCount();
  std::set<uint64_t> digests;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    util::SetGlobalThreadCount(threads);
    digests.insert(BuildIndexSnapshot(tables, PinnedOptions(), 1)->Digest());
  }
  util::SetGlobalThreadCount(ambient);
  EXPECT_EQ(digests.size(), 1u);
}

TEST(IndexSnapshotTest, ShardCountNeverChangesResults) {
  const std::vector<Table> tables = ServeCorpus();
  const auto one = BuildIndexSnapshot(tables, PinnedOptions(1), 1);
  const auto five = BuildIndexSnapshot(tables, PinnedOptions(5), 1);
  EXPECT_EQ(one->shard_count, 1u);
  EXPECT_EQ(five->shard_count, 5u);
  for (uint32_t t = 0; t < tables.size(); ++t) {
    const JoinResult ja = QueryJoins(*one, {t, std::nullopt, 100}, Unlimited());
    const JoinResult jb =
        QueryJoins(*five, {t, std::nullopt, 100}, Unlimited());
    ASSERT_EQ(ja.hits.size(), jb.hits.size());
    for (size_t i = 0; i < ja.hits.size(); ++i) {
      EXPECT_TRUE(SameJoinHit(ja.hits[i], jb.hits[i]));
    }
    const KeywordResult ka =
        QueryKeywords(*one, {one->entries[t].name, 100}, Unlimited());
    const KeywordResult kb =
        QueryKeywords(*five, {one->entries[t].name, 100}, Unlimited());
    ASSERT_EQ(ka.hits.size(), kb.hits.size());
    for (size_t i = 0; i < ka.hits.size(); ++i) {
      EXPECT_EQ(ka.hits[i].table, kb.hits[i].table);
      EXPECT_EQ(ka.hits[i].score, kb.hits[i].score);
    }
  }
}

TEST(QueryTest, TopKAgreesWithBruteForce) {
  const std::vector<Table> tables = ServeCorpus();
  const auto snapshot = BuildIndexSnapshot(tables, PinnedOptions(), 1);
  bool any_join = false, any_union = false;
  for (uint32_t t = 0; t < tables.size(); ++t) {
    const JoinQuery jq{t, std::nullopt, 100};
    const JoinResult served = QueryJoins(*snapshot, jq, Unlimited());
    const JoinResult brute = BruteForceJoins(*snapshot, jq, Unlimited());
    ASSERT_EQ(served.hits.size(), brute.hits.size()) << "table " << t;
    for (size_t i = 0; i < served.hits.size(); ++i) {
      EXPECT_TRUE(SameJoinHit(served.hits[i], brute.hits[i]));
    }
    any_join |= !served.hits.empty();

    const UnionQuery uq{t, 100};
    const UnionResult useved = QueryUnions(*snapshot, uq, Unlimited());
    const UnionResult ubrute = BruteForceUnions(*snapshot, uq, Unlimited());
    ASSERT_EQ(useved.hits.size(), ubrute.hits.size()) << "table " << t;
    for (size_t i = 0; i < useved.hits.size(); ++i) {
      EXPECT_EQ(useved.hits[i].table, ubrute.hits[i].table);
      EXPECT_EQ(useved.hits[i].similarity, ubrute.hits[i].similarity);
      EXPECT_EQ(useved.hits[i].exact, ubrute.hits[i].exact);
    }
    any_union |= !useved.hits.empty();

    const KeywordQuery kq{snapshot->entries[t].name + " zqxwv", 100};
    const KeywordResult kserved = QueryKeywords(*snapshot, kq, Unlimited());
    const KeywordResult kbrute = BruteForceKeywords(*snapshot, kq, Unlimited());
    ASSERT_EQ(kserved.hits.size(), kbrute.hits.size()) << "table " << t;
    for (size_t i = 0; i < kserved.hits.size(); ++i) {
      EXPECT_EQ(kserved.hits[i].table, kbrute.hits[i].table);
      EXPECT_EQ(kserved.hits[i].score, kbrute.hits[i].score);
    }
    EXPECT_FALSE(kserved.hits.empty());  // the table matches its own name
  }
  // The corpus was built to exercise both families.
  EXPECT_TRUE(any_join);
  EXPECT_TRUE(any_union);
}

TEST(QueryTest, SmallerBudgetIsSubsetWithIdenticalOrder) {
  const std::vector<Table> tables = ServeCorpus();
  const auto snapshot = BuildIndexSnapshot(tables, PinnedOptions(), 1);
  const JoinQuery query{0, std::nullopt, 100};
  const JoinResult full = QueryJoins(*snapshot, query, Unlimited());
  ASSERT_GE(full.hits.size(), 2u);  // both other segment tables hit
  EXPECT_FALSE(full.truncated);

  size_t previous_hits = 0;
  for (size_t cap = 1; cap <= full.candidates_considered + 1; ++cap) {
    QueryBudget budget = Unlimited();
    budget.max_candidates = cap;
    const JoinResult got = QueryJoins(*snapshot, query, budget);
    EXPECT_LE(got.candidates_considered, cap);
    EXPECT_EQ(got.truncated, got.candidates_considered < full.candidates_considered);
    // Degradation is only ever *fewer* hits, never different ones: the
    // budgeted hits must be a subsequence of the full ranking.
    size_t j = 0;
    for (const JoinHit& hit : got.hits) {
      while (j < full.hits.size() && !SameJoinHit(full.hits[j], hit)) ++j;
      ASSERT_LT(j, full.hits.size()) << "hit not in the full ranking";
      ++j;
    }
    EXPECT_GE(got.hits.size(), previous_hits);  // monotone in the budget
    previous_hits = got.hits.size();
  }
  // At full budget the results converge to the unbudgeted ranking.
  QueryBudget exact = Unlimited();
  exact.max_candidates = full.candidates_considered;
  const JoinResult converged = QueryJoins(*snapshot, query, exact);
  ASSERT_EQ(converged.hits.size(), full.hits.size());
  for (size_t i = 0; i < full.hits.size(); ++i) {
    EXPECT_TRUE(SameJoinHit(converged.hits[i], full.hits[i]));
  }
}

TEST(QueryTest, EnvResolutionForShardsAndTimeBudget) {
  EXPECT_EQ(ResolveShardCount(3), 3u);
  ::setenv("OGDP_SERVE_SHARDS", "7", 1);
  EXPECT_EQ(ResolveShardCount(0), 7u);
  ::setenv("OGDP_SERVE_SHARDS", "not-a-number", 1);
  EXPECT_EQ(ResolveShardCount(0), 4u);
  ::unsetenv("OGDP_SERVE_SHARDS");
  EXPECT_EQ(ResolveShardCount(0), 4u);

  EXPECT_EQ(ResolveTimeBudgetMs(5.0), 5.0);
  EXPECT_EQ(ResolveTimeBudgetMs(0), 0.0);  // explicit unlimited
  ::setenv("OGDP_QUERY_BUDGET_MS", "2.5", 1);
  EXPECT_EQ(ResolveTimeBudgetMs(-1), 2.5);
  ::unsetenv("OGDP_QUERY_BUDGET_MS");
  EXPECT_EQ(ResolveTimeBudgetMs(-1), 0.0);
}

TEST(QueryEngineTest, EmptyBeforeFirstRefresh) {
  QueryEngine engine(PinnedOptions());
  EXPECT_EQ(engine.snapshot(), nullptr);
  EXPECT_EQ(engine.version(), 0u);
  EXPECT_TRUE(engine.Joins({0, std::nullopt, 10}, Unlimited()).hits.empty());
  EXPECT_TRUE(engine.Unions({0, 10}, Unlimited()).hits.empty());
  EXPECT_TRUE(engine.Keywords({"traffic", 10}, Unlimited()).hits.empty());
}

TEST(QueryEngineTest, RefreshKeepsAcquiredSnapshotAlive) {
  const std::vector<Table> first = ServeCorpus();
  std::vector<Table> second = ServeCorpus();
  second.push_back(IdTable("detours", "transport", "segment_alt", 1, 20, 3));

  QueryEngine engine(PinnedOptions());
  const auto s1 = engine.Refresh(first);
  ASSERT_NE(s1, nullptr);
  EXPECT_EQ(s1->epoch, 1u);
  EXPECT_EQ(engine.version(), 1u);

  const auto held = engine.snapshot();  // a reader holding epoch 1
  const auto s2 = engine.Refresh(second);
  EXPECT_EQ(s2->epoch, 2u);
  EXPECT_EQ(engine.version(), 2u);
  EXPECT_EQ(engine.snapshot()->Digest(), s2->Digest());
  // The old epoch is still fully usable — refresh never invalidates a
  // snapshot an in-flight query acquired.
  EXPECT_EQ(held->Digest(), s1->Digest());
  EXPECT_EQ(held->entries.size(), first.size());
  EXPECT_FALSE(
      QueryKeywords(*held, {"traffic", 10}, Unlimited()).hits.empty());
}

TEST(QueryEngineTest, SubmittedQueriesMatchSynchronousOnes) {
  QueryEngine engine(PinnedOptions(), 2);
  engine.Refresh(ServeCorpus());
  auto joins = engine.SubmitJoins({0, std::nullopt, 100}, Unlimited());
  auto unions = engine.SubmitUnions({3, 100}, Unlimited());
  auto keywords = engine.SubmitKeywords({"traffic", 100}, Unlimited());

  const JoinResult sync_joins = engine.Joins({0, std::nullopt, 100}, Unlimited());
  const JoinResult async_joins = joins.get();
  ASSERT_EQ(async_joins.hits.size(), sync_joins.hits.size());
  for (size_t i = 0; i < sync_joins.hits.size(); ++i) {
    EXPECT_TRUE(SameJoinHit(async_joins.hits[i], sync_joins.hits[i]));
  }
  EXPECT_EQ(unions.get().hits.size(), engine.Unions({3, 100}, Unlimited()).hits.size());
  EXPECT_FALSE(keywords.get().hits.empty());

  const RequestScheduler::Stats stats = engine.scheduler_stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.queued, 0u);
}

// The TSan target: four reader threads query and re-acquire snapshots
// while the main thread republishes new epochs. Every snapshot a reader
// observes must be exactly one of the published epochs (digest match) —
// never a torn or partially-swapped state — and queries against it must
// agree with the brute-force reference for that same snapshot.
TEST(QueryEngineTest, RefreshUnderLoadIsNeverTorn) {
  constexpr int kEpochs = 4;
  std::vector<std::vector<Table>> corpora;
  for (int e = 0; e < kEpochs; ++e) {
    std::vector<Table> corpus = ServeCorpus();
    for (int extra = 0; extra < e; ++extra) {
      corpus.push_back(IdTable("extra " + std::to_string(extra), "transport",
                               "segment_x" + std::to_string(extra), 1, 20,
                               extra + 1));
    }
    corpora.push_back(std::move(corpus));
  }
  // Epochs are numbered by publication count, so every future digest is
  // known before the engine publishes anything.
  std::set<uint64_t> expected;
  for (int e = 0; e < kEpochs; ++e) {
    expected.insert(
        BuildIndexSnapshot(corpora[e], PinnedOptions(), e + 1)->Digest());
  }

  QueryEngine engine(PinnedOptions(), 2);
  engine.Refresh(corpora[0]);
  std::atomic<bool> done{false};
  std::atomic<size_t> observed{0};
  std::atomic<bool> torn{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        const auto snapshot = engine.snapshot();
        if (snapshot == nullptr) continue;
        if (expected.count(snapshot->Digest()) == 0) {
          torn.store(true);
          return;
        }
        const JoinQuery query{0, std::nullopt, 10};
        const JoinResult served = QueryJoins(*snapshot, query, Unlimited());
        const JoinResult brute = BruteForceJoins(*snapshot, query, Unlimited());
        if (served.hits.size() != brute.hits.size()) {
          torn.store(true);
          return;
        }
        observed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int e = 1; e < kEpochs; ++e) {
    engine.Refresh(corpora[e]);  // readers keep querying throughout
  }
  // Let readers observe the final epoch before stopping.
  const size_t target = observed.load() + 8;
  while (observed.load() < target && !torn.load()) {
  }
  done.store(true);
  for (std::thread& reader : readers) reader.join();
  EXPECT_FALSE(torn.load());
  EXPECT_EQ(engine.version(), static_cast<uint64_t>(kEpochs));
  EXPECT_GT(observed.load(), 0u);
}

TEST(RequestSchedulerTest, DrainsEveryQueuedTaskOnShutdown) {
  std::atomic<size_t> ran{0};
  std::vector<std::future<size_t>> results;
  {
    RequestScheduler scheduler(2);
    EXPECT_EQ(scheduler.thread_count(), 2u);
    for (size_t i = 0; i < 64; ++i) {
      results.push_back(scheduler.Submit([&ran, i] {
        ran.fetch_add(1);
        return i;
      }));
    }
  }  // destructor: stop intake, drain the queue, join workers
  EXPECT_EQ(ran.load(), 64u);
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].valid());
    EXPECT_EQ(results[i].get(), i);
  }
}

TEST(SnapshotRegistryTest, PublishSwapsAndVersions) {
  SnapshotRegistry registry;
  EXPECT_EQ(registry.Acquire(), nullptr);
  EXPECT_EQ(registry.version(), 0u);
  const auto first = BuildIndexSnapshot(ServeCorpus(), PinnedOptions(), 1);
  EXPECT_EQ(registry.Publish(first), 1u);
  EXPECT_EQ(registry.Acquire(), first);
  const auto second = BuildIndexSnapshot(ServeCorpus(), PinnedOptions(), 2);
  EXPECT_EQ(registry.Publish(second), 2u);
  EXPECT_EQ(registry.Acquire(), second);
  EXPECT_EQ(registry.version(), 2u);
}

}  // namespace
}  // namespace ogdp::serve
