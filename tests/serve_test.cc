// Tests for the table-search serving layer: snapshot build determinism,
// top-k agreement with the brute-force reference, deterministic budget
// degradation, snapshot-swap refresh under concurrent readers (the TSan
// target), and the request scheduler's drain-on-shutdown guarantee.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <future>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "fd/memory_governor.h"
#include "serve/brute_force.h"
#include "serve/index_snapshot.h"
#include "serve/query_engine.h"
#include "serve/result_cache.h"
#include "serve/scheduler.h"
#include "serve/snapshot_registry.h"
#include "table/table.h"
#include "util/parallel.h"

namespace ogdp::serve {
namespace {

using table::Table;

Table MakeTable(const std::string& name, const std::string& dataset,
                const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows) {
  auto t = Table::FromRecords(name, header, rows);
  EXPECT_TRUE(t.ok());
  t->set_dataset_id(dataset);
  return std::move(t).value();
}

// A one-column table of `count` categorical values cat<lo>..cat<lo+count-1>,
// skipping `skip` (0 = none). Distinct counts stay >= the finder's
// eligibility floor and overlaps land above the 0.9 Jaccard threshold.
Table IdTable(const std::string& name, const std::string& dataset,
              const std::string& column, int lo, int count, int skip) {
  std::vector<std::vector<std::string>> rows;
  for (int i = lo; static_cast<int>(rows.size()) < count; ++i) {
    if (i == skip) continue;
    rows.push_back({"cat" + std::to_string(i)});
  }
  return MakeTable(name, dataset, {column}, rows);
}

// Join cluster (segment ids with J = 1 and J ~ 0.905), a three-member
// exact-union group, and distinctive names for keyword queries.
std::vector<Table> ServeCorpus() {
  std::vector<Table> tables;
  tables.push_back(
      IdTable("traffic counts", "transport", "segment_id", 1, 20, 0));
  tables.push_back(
      IdTable("traffic speed", "transport", "segment_ref", 1, 20, 0));
  tables.push_back(IdTable("accident sites", "safety", "segment", 1, 20, 7));
  for (int i = 0; i < 3; ++i) {
    tables.push_back(MakeTable("budget " + std::to_string(2020 + i), "finance",
                               {"year", "value"},
                               {{"2020", "1.5"}, {"2021", "2.5"}}));
  }
  return tables;
}

ServeOptions PinnedOptions(size_t shards = 3) {
  ServeOptions options;
  options.shards = shards;  // env-proof: never consult OGDP_SERVE_SHARDS
  return options;
}

// Unlimited but env-proof: never consult OGDP_QUERY_BUDGET_MS.
QueryBudget Unlimited() {
  QueryBudget b;
  b.time_budget_ms = 0;
  return b;
}

bool SameJoinHit(const JoinHit& a, const JoinHit& b) {
  return a.query_column.table == b.query_column.table &&
         a.query_column.column == b.query_column.column &&
         a.match.table == b.match.table && a.match.column == b.match.column &&
         a.jaccard == b.jaccard && a.score == b.score;
}

TEST(IndexSnapshotTest, BuildIsDeterministicAcrossThreadCounts) {
  const std::vector<Table> tables = ServeCorpus();
  const size_t ambient = util::GlobalThreadCount();
  std::set<uint64_t> digests;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    util::SetGlobalThreadCount(threads);
    digests.insert(BuildIndexSnapshot(tables, PinnedOptions(), 1)->Digest());
  }
  util::SetGlobalThreadCount(ambient);
  EXPECT_EQ(digests.size(), 1u);
}

TEST(IndexSnapshotTest, ShardCountNeverChangesResults) {
  const std::vector<Table> tables = ServeCorpus();
  const auto one = BuildIndexSnapshot(tables, PinnedOptions(1), 1);
  const auto five = BuildIndexSnapshot(tables, PinnedOptions(5), 1);
  EXPECT_EQ(one->shard_count, 1u);
  EXPECT_EQ(five->shard_count, 5u);
  for (uint32_t t = 0; t < tables.size(); ++t) {
    const JoinResult ja = QueryJoins(*one, {t, std::nullopt, 100}, Unlimited());
    const JoinResult jb =
        QueryJoins(*five, {t, std::nullopt, 100}, Unlimited());
    ASSERT_EQ(ja.hits.size(), jb.hits.size());
    for (size_t i = 0; i < ja.hits.size(); ++i) {
      EXPECT_TRUE(SameJoinHit(ja.hits[i], jb.hits[i]));
    }
    const KeywordResult ka =
        QueryKeywords(*one, {one->entries[t].name, 100}, Unlimited());
    const KeywordResult kb =
        QueryKeywords(*five, {one->entries[t].name, 100}, Unlimited());
    ASSERT_EQ(ka.hits.size(), kb.hits.size());
    for (size_t i = 0; i < ka.hits.size(); ++i) {
      EXPECT_EQ(ka.hits[i].table, kb.hits[i].table);
      EXPECT_EQ(ka.hits[i].score, kb.hits[i].score);
    }
  }
}

TEST(QueryTest, TopKAgreesWithBruteForce) {
  const std::vector<Table> tables = ServeCorpus();
  const auto snapshot = BuildIndexSnapshot(tables, PinnedOptions(), 1);
  bool any_join = false, any_union = false;
  for (uint32_t t = 0; t < tables.size(); ++t) {
    const JoinQuery jq{t, std::nullopt, 100};
    const JoinResult served = QueryJoins(*snapshot, jq, Unlimited());
    const JoinResult brute = BruteForceJoins(*snapshot, jq, Unlimited());
    ASSERT_EQ(served.hits.size(), brute.hits.size()) << "table " << t;
    for (size_t i = 0; i < served.hits.size(); ++i) {
      EXPECT_TRUE(SameJoinHit(served.hits[i], brute.hits[i]));
    }
    any_join |= !served.hits.empty();

    const UnionQuery uq{t, 100};
    const UnionResult useved = QueryUnions(*snapshot, uq, Unlimited());
    const UnionResult ubrute = BruteForceUnions(*snapshot, uq, Unlimited());
    ASSERT_EQ(useved.hits.size(), ubrute.hits.size()) << "table " << t;
    for (size_t i = 0; i < useved.hits.size(); ++i) {
      EXPECT_EQ(useved.hits[i].table, ubrute.hits[i].table);
      EXPECT_EQ(useved.hits[i].similarity, ubrute.hits[i].similarity);
      EXPECT_EQ(useved.hits[i].exact, ubrute.hits[i].exact);
    }
    any_union |= !useved.hits.empty();

    const KeywordQuery kq{snapshot->entries[t].name + " zqxwv", 100};
    const KeywordResult kserved = QueryKeywords(*snapshot, kq, Unlimited());
    const KeywordResult kbrute = BruteForceKeywords(*snapshot, kq, Unlimited());
    ASSERT_EQ(kserved.hits.size(), kbrute.hits.size()) << "table " << t;
    for (size_t i = 0; i < kserved.hits.size(); ++i) {
      EXPECT_EQ(kserved.hits[i].table, kbrute.hits[i].table);
      EXPECT_EQ(kserved.hits[i].score, kbrute.hits[i].score);
    }
    EXPECT_FALSE(kserved.hits.empty());  // the table matches its own name
  }
  // The corpus was built to exercise both families.
  EXPECT_TRUE(any_join);
  EXPECT_TRUE(any_union);
}

TEST(QueryTest, SmallerBudgetIsSubsetWithIdenticalOrder) {
  const std::vector<Table> tables = ServeCorpus();
  const auto snapshot = BuildIndexSnapshot(tables, PinnedOptions(), 1);
  const JoinQuery query{0, std::nullopt, 100};
  const JoinResult full = QueryJoins(*snapshot, query, Unlimited());
  ASSERT_GE(full.hits.size(), 2u);  // both other segment tables hit
  EXPECT_FALSE(full.truncated);

  size_t previous_hits = 0;
  for (size_t cap = 1; cap <= full.candidates_considered + 1; ++cap) {
    QueryBudget budget = Unlimited();
    budget.max_candidates = cap;
    const JoinResult got = QueryJoins(*snapshot, query, budget);
    EXPECT_LE(got.candidates_considered, cap);
    EXPECT_EQ(got.truncated, got.candidates_considered < full.candidates_considered);
    // Degradation is only ever *fewer* hits, never different ones: the
    // budgeted hits must be a subsequence of the full ranking.
    size_t j = 0;
    for (const JoinHit& hit : got.hits) {
      while (j < full.hits.size() && !SameJoinHit(full.hits[j], hit)) ++j;
      ASSERT_LT(j, full.hits.size()) << "hit not in the full ranking";
      ++j;
    }
    EXPECT_GE(got.hits.size(), previous_hits);  // monotone in the budget
    previous_hits = got.hits.size();
  }
  // At full budget the results converge to the unbudgeted ranking.
  QueryBudget exact = Unlimited();
  exact.max_candidates = full.candidates_considered;
  const JoinResult converged = QueryJoins(*snapshot, query, exact);
  ASSERT_EQ(converged.hits.size(), full.hits.size());
  for (size_t i = 0; i < full.hits.size(); ++i) {
    EXPECT_TRUE(SameJoinHit(converged.hits[i], full.hits[i]));
  }
}

TEST(QueryTest, EnvResolutionForShardsAndTimeBudget) {
  EXPECT_EQ(ResolveShardCount(3), 3u);
  ::setenv("OGDP_SERVE_SHARDS", "7", 1);
  EXPECT_EQ(ResolveShardCount(0), 7u);
  ::setenv("OGDP_SERVE_SHARDS", "not-a-number", 1);
  EXPECT_EQ(ResolveShardCount(0), 4u);
  ::unsetenv("OGDP_SERVE_SHARDS");
  EXPECT_EQ(ResolveShardCount(0), 4u);

  EXPECT_EQ(ResolveTimeBudgetMs(5.0), 5.0);
  EXPECT_EQ(ResolveTimeBudgetMs(0), 0.0);  // explicit unlimited
  ::setenv("OGDP_QUERY_BUDGET_MS", "2.5", 1);
  EXPECT_EQ(ResolveTimeBudgetMs(-1), 2.5);
  ::unsetenv("OGDP_QUERY_BUDGET_MS");
  EXPECT_EQ(ResolveTimeBudgetMs(-1), 0.0);
}

TEST(QueryEngineTest, EmptyBeforeFirstRefresh) {
  QueryEngine engine(PinnedOptions());
  EXPECT_EQ(engine.snapshot(), nullptr);
  EXPECT_EQ(engine.version(), 0u);
  EXPECT_TRUE(engine.Joins({0, std::nullopt, 10}, Unlimited()).hits.empty());
  EXPECT_TRUE(engine.Unions({0, 10}, Unlimited()).hits.empty());
  EXPECT_TRUE(engine.Keywords({"traffic", 10}, Unlimited()).hits.empty());
}

TEST(QueryEngineTest, RefreshKeepsAcquiredSnapshotAlive) {
  const std::vector<Table> first = ServeCorpus();
  std::vector<Table> second = ServeCorpus();
  second.push_back(IdTable("detours", "transport", "segment_alt", 1, 20, 3));

  QueryEngine engine(PinnedOptions());
  const auto s1 = engine.Refresh(first);
  ASSERT_NE(s1, nullptr);
  EXPECT_EQ(s1->epoch, 1u);
  EXPECT_EQ(engine.version(), 1u);

  const auto held = engine.snapshot();  // a reader holding epoch 1
  const auto s2 = engine.Refresh(second);
  EXPECT_EQ(s2->epoch, 2u);
  EXPECT_EQ(engine.version(), 2u);
  EXPECT_EQ(engine.snapshot()->Digest(), s2->Digest());
  // The old epoch is still fully usable — refresh never invalidates a
  // snapshot an in-flight query acquired.
  EXPECT_EQ(held->Digest(), s1->Digest());
  EXPECT_EQ(held->entries.size(), first.size());
  EXPECT_FALSE(
      QueryKeywords(*held, {"traffic", 10}, Unlimited()).hits.empty());
}

TEST(QueryEngineTest, SubmittedQueriesMatchSynchronousOnes) {
  QueryEngine engine(PinnedOptions(), 2);
  engine.Refresh(ServeCorpus());
  auto joins = engine.SubmitJoins({0, std::nullopt, 100}, Unlimited());
  auto unions = engine.SubmitUnions({3, 100}, Unlimited());
  auto keywords = engine.SubmitKeywords({"traffic", 100}, Unlimited());

  const JoinResult sync_joins = engine.Joins({0, std::nullopt, 100}, Unlimited());
  const JoinResult async_joins = joins.get();
  ASSERT_EQ(async_joins.hits.size(), sync_joins.hits.size());
  for (size_t i = 0; i < sync_joins.hits.size(); ++i) {
    EXPECT_TRUE(SameJoinHit(async_joins.hits[i], sync_joins.hits[i]));
  }
  EXPECT_EQ(unions.get().hits.size(), engine.Unions({3, 100}, Unlimited()).hits.size());
  EXPECT_FALSE(keywords.get().hits.empty());

  const RequestScheduler::Stats stats = engine.scheduler_stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.queued, 0u);
}

// The TSan target: four reader threads query and re-acquire snapshots
// while the main thread republishes new epochs. Every snapshot a reader
// observes must be exactly one of the published epochs (digest match) —
// never a torn or partially-swapped state — and queries against it must
// agree with the brute-force reference for that same snapshot.
TEST(QueryEngineTest, RefreshUnderLoadIsNeverTorn) {
  constexpr int kEpochs = 4;
  std::vector<std::vector<Table>> corpora;
  for (int e = 0; e < kEpochs; ++e) {
    std::vector<Table> corpus = ServeCorpus();
    for (int extra = 0; extra < e; ++extra) {
      corpus.push_back(IdTable("extra " + std::to_string(extra), "transport",
                               "segment_x" + std::to_string(extra), 1, 20,
                               extra + 1));
    }
    corpora.push_back(std::move(corpus));
  }
  // Epochs are numbered by publication count, so every future digest is
  // known before the engine publishes anything.
  std::set<uint64_t> expected;
  for (int e = 0; e < kEpochs; ++e) {
    expected.insert(
        BuildIndexSnapshot(corpora[e], PinnedOptions(), e + 1)->Digest());
  }

  QueryEngine engine(PinnedOptions(), 2);
  engine.Refresh(corpora[0]);
  std::atomic<bool> done{false};
  std::atomic<size_t> observed{0};
  std::atomic<bool> torn{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        const auto snapshot = engine.snapshot();
        if (snapshot == nullptr) continue;
        if (expected.count(snapshot->Digest()) == 0) {
          torn.store(true);
          return;
        }
        const JoinQuery query{0, std::nullopt, 10};
        const JoinResult served = QueryJoins(*snapshot, query, Unlimited());
        const JoinResult brute = BruteForceJoins(*snapshot, query, Unlimited());
        if (served.hits.size() != brute.hits.size()) {
          torn.store(true);
          return;
        }
        observed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int e = 1; e < kEpochs; ++e) {
    engine.Refresh(corpora[e]);  // readers keep querying throughout
  }
  // Let readers observe the final epoch before stopping.
  const size_t target = observed.load() + 8;
  while (observed.load() < target && !torn.load()) {
  }
  done.store(true);
  for (std::thread& reader : readers) reader.join();
  EXPECT_FALSE(torn.load());
  EXPECT_EQ(engine.version(), static_cast<uint64_t>(kEpochs));
  EXPECT_GT(observed.load(), 0u);
}

TEST(RequestSchedulerTest, DrainsEveryQueuedTaskOnShutdown) {
  std::atomic<size_t> ran{0};
  std::vector<std::future<size_t>> results;
  {
    RequestScheduler scheduler(2);
    EXPECT_EQ(scheduler.thread_count(), 2u);
    for (size_t i = 0; i < 64; ++i) {
      results.push_back(scheduler.Submit([&ran, i] {
        ran.fetch_add(1);
        return i;
      }));
    }
  }  // destructor: stop intake, drain the queue, join workers
  EXPECT_EQ(ran.load(), 64u);
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].valid());
    EXPECT_EQ(results[i].get(), i);
  }
}

// ---------------------------------------------------------------------
// Duplicate-token keyword scoring (regression). Scoring is defined over
// the unique query token set: "tax tax rate income" must score exactly
// like {income, rate, tax}. Before use-site dedup, a duplicated token
// counted twice in numerator and denominator, inflating every table
// that matched it — here that would tie "tax ledger" (1 distinct match)
// with "income rate report" (2 distinct matches) at 2/4 each and let
// table order decide, instead of the correct 1/3 vs 2/3 ranking.
TEST(QueryTest, DuplicateQueryTokensNeverInflateKeywordScores) {
  std::vector<Table> tables;
  tables.push_back(MakeTable("tax ledger", "finance", {"aa"}, {{"x"}}));
  tables.push_back(
      MakeTable("income rate report", "finance", {"bb"}, {{"y"}}));
  const auto snapshot = BuildIndexSnapshot(tables, PinnedOptions(), 1);

  const KeywordQuery dup{"tax tax rate income", 10};
  for (const KeywordResult& got :
       {QueryKeywords(*snapshot, dup, Unlimited()),
        BruteForceKeywords(*snapshot, dup, Unlimited())}) {
    ASSERT_EQ(got.hits.size(), 2u);
    // 3 unique query tokens: the two-match table wins, 2/3 over 1/3.
    EXPECT_EQ(got.hits[0].table, 1u);
    EXPECT_DOUBLE_EQ(got.hits[0].score, 2.0 / 3.0);
    EXPECT_EQ(got.hits[1].table, 0u);
    EXPECT_DOUBLE_EQ(got.hits[1].score, 1.0 / 3.0);
  }

  // Idempotence: repeating the whole query text changes nothing, byte
  // for byte, in the served path and the brute-force reference alike.
  const KeywordQuery once{"tax", 10};
  const KeywordQuery twice{"tax tax", 10};
  const KeywordResult a = QueryKeywords(*snapshot, once, Unlimited());
  const KeywordResult b = QueryKeywords(*snapshot, twice, Unlimited());
  ASSERT_EQ(a.hits.size(), b.hits.size());
  for (size_t i = 0; i < a.hits.size(); ++i) {
    EXPECT_EQ(a.hits[i].table, b.hits[i].table);
    EXPECT_EQ(a.hits[i].score, b.hits[i].score);
  }
  const KeywordResult ba = BruteForceKeywords(*snapshot, once, Unlimited());
  const KeywordResult bb = BruteForceKeywords(*snapshot, twice, Unlimited());
  ASSERT_EQ(ba.hits.size(), bb.hits.size());
  for (size_t i = 0; i < ba.hits.size(); ++i) {
    EXPECT_EQ(ba.hits[i].table, bb.hits[i].table);
    EXPECT_EQ(ba.hits[i].score, bb.hits[i].score);
  }
}

// ------------------------------------------------------- result cache

TEST(ResultCacheTest, HitsMissesAndEpochInvalidation) {
  ResultCache cache(fd::kUnlimitedFdMemoryBudget);
  cache.BeginEpoch(1);

  KeywordResult value;
  value.hits.push_back(KeywordHit{3, 0.5});
  value.candidates_considered = 1;
  value.epoch = 1;
  const std::string key = KeywordCacheKey(1, {"traffic counts", 10}, 0);

  EXPECT_FALSE(cache.LookupKeywords(key).has_value());
  cache.Insert(key, 1, value);
  const auto hit = cache.LookupKeywords(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->from_cache);
  EXPECT_EQ(hit->epoch, 1u);
  ASSERT_EQ(hit->hits.size(), 1u);
  EXPECT_EQ(hit->hits[0].table, 3u);

  // An insert keyed to a superseded epoch is refused outright.
  cache.Insert(KeywordCacheKey(7, {"stale", 10}, 0), 7, value);
  EXPECT_EQ(cache.stats().declines, 1u);

  // New epoch: wholesale invalidation, nothing survives.
  cache.BeginEpoch(2);
  EXPECT_FALSE(cache.LookupKeywords(key).has_value());
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.invalidated, 1u);
  EXPECT_EQ(stats.bytes_in_use, 0u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(ResultCacheTest, KeywordKeyCanonicalizesTokenVariants) {
  // Same unique token set, wildly different text: one cache entry.
  const std::string a = KeywordCacheKey(1, {"tax rate", 10}, 0);
  const std::string b = KeywordCacheKey(1, {"Rate, TAX!", 10}, 0);
  const std::string c = KeywordCacheKey(1, {"tax tax rate", 10}, 0);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  // Different k, budget, or epoch: different entries.
  EXPECT_NE(a, KeywordCacheKey(1, {"tax rate", 11}, 0));
  EXPECT_NE(a, KeywordCacheKey(1, {"tax rate", 10}, 5));
  EXPECT_NE(a, KeywordCacheKey(2, {"tax rate", 10}, 0));
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedUnderPressure) {
  // Budget sized to hold roughly one entry: the second insert must evict
  // the least-recently-used first entry rather than being declined.
  ResultCache cache(400);
  cache.BeginEpoch(1);
  UnionResult value;
  value.epoch = 1;
  const std::string k1 = UnionCacheKey(1, {1, 10}, 0);
  const std::string k2 = UnionCacheKey(1, {2, 10}, 0);
  cache.Insert(k1, 1, value);
  ASSERT_TRUE(cache.LookupUnions(k1).has_value());
  cache.Insert(k2, 1, value);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_FALSE(cache.LookupUnions(k1).has_value());  // evicted
  EXPECT_TRUE(cache.LookupUnions(k2).has_value());   // resident
  EXPECT_LE(cache.stats().bytes_in_use, 400u);       // never over budget
}

TEST(ResultCacheTest, OneByteBudgetDeclinesEveryStore) {
  ResultCache cache(1);
  cache.BeginEpoch(1);
  JoinResult value;
  value.epoch = 1;
  const std::string key = JoinCacheKey(1, {0, std::nullopt, 10}, 0);
  cache.Insert(key, 1, value);
  EXPECT_FALSE(cache.LookupJoins(key).has_value());
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.stores, 0u);
  EXPECT_GE(stats.declines, 1u);
}

TEST(ResultCacheTest, BudgetEnvResolution) {
  EXPECT_EQ(ResolveResultCacheBudget(1234), 1234u);
  EXPECT_EQ(ResolveResultCacheBudget(fd::kUnlimitedFdMemoryBudget), 0u);
  ::setenv("OGDP_RESULT_CACHE_BUDGET", "4k", 1);
  EXPECT_EQ(ResolveResultCacheBudget(0), 4096u);
  ::setenv("OGDP_RESULT_CACHE_BUDGET", "unlimited", 1);
  EXPECT_EQ(ResolveResultCacheBudget(0), 0u);
  ::unsetenv("OGDP_RESULT_CACHE_BUDGET");
  EXPECT_EQ(ResolveResultCacheBudget(0), size_t{64} << 20);
  // An explicit override beats the environment.
  ::setenv("OGDP_RESULT_CACHE_BUDGET", "4k", 1);
  EXPECT_EQ(ResolveResultCacheBudget(99), 99u);
  ::unsetenv("OGDP_RESULT_CACHE_BUDGET");
}

// ------------------------------------------------ engine-level caching

QueryEngineOptions UnlimitedCache() {
  QueryEngineOptions o;
  o.result_cache_budget = fd::kUnlimitedFdMemoryBudget;
  o.client_queue_capacity = 64;  // env-proof
  return o;
}

TEST(QueryEngineTest, WarmQueriesAreCacheHitsAndByteIdentical) {
  QueryEngine engine(PinnedOptions(), 1, UnlimitedCache());
  engine.Refresh(ServeCorpus());

  const JoinQuery jq{0, std::nullopt, 100};
  const JoinResult cold = engine.Joins(jq, Unlimited());
  EXPECT_FALSE(cold.from_cache);
  EXPECT_EQ(cold.epoch, 1u);
  const JoinResult warm = engine.Joins(jq, Unlimited());
  EXPECT_TRUE(warm.from_cache);
  EXPECT_EQ(warm.epoch, cold.epoch);
  EXPECT_EQ(warm.candidates_considered, cold.candidates_considered);
  EXPECT_EQ(warm.truncated, cold.truncated);
  ASSERT_EQ(warm.hits.size(), cold.hits.size());
  for (size_t i = 0; i < cold.hits.size(); ++i) {
    EXPECT_TRUE(SameJoinHit(warm.hits[i], cold.hits[i]));
  }

  const UnionResult cold_u = engine.Unions({3, 100}, Unlimited());
  const UnionResult warm_u = engine.Unions({3, 100}, Unlimited());
  EXPECT_TRUE(warm_u.from_cache);
  EXPECT_EQ(warm_u.hits.size(), cold_u.hits.size());

  // Keyword canonicalization: a duplicated-text variant is the same
  // cache entry as the original.
  const KeywordResult cold_k = engine.Keywords({"traffic", 100}, Unlimited());
  const KeywordResult variant =
      engine.Keywords({"traffic traffic", 100}, Unlimited());
  EXPECT_TRUE(variant.from_cache);
  ASSERT_EQ(variant.hits.size(), cold_k.hits.size());
  for (size_t i = 0; i < cold_k.hits.size(); ++i) {
    EXPECT_EQ(variant.hits[i].table, cold_k.hits[i].table);
    EXPECT_EQ(variant.hits[i].score, cold_k.hits[i].score);
  }

  const ResultCacheStats stats = engine.cache_stats();
  EXPECT_GE(stats.hits, 3u);
  EXPECT_GE(stats.stores, 3u);
  EXPECT_EQ(stats.declines, 0u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(QueryEngineTest, RefreshInvalidatesCachedResults) {
  const std::vector<Table> first = ServeCorpus();
  std::vector<Table> second = ServeCorpus();
  second.push_back(IdTable("detours", "transport", "segment_alt", 1, 20, 3));

  QueryEngine engine(PinnedOptions(), 1, UnlimitedCache());
  const auto s1 = engine.Refresh(first);
  const JoinQuery jq{0, std::nullopt, 100};
  engine.Joins(jq, Unlimited());                       // fill
  EXPECT_TRUE(engine.Joins(jq, Unlimited()).from_cache);  // warm

  const auto s2 = engine.Refresh(second);
  const JoinResult after = engine.Joins(jq, Unlimited());
  EXPECT_FALSE(after.from_cache);  // old entry cannot survive the swap
  EXPECT_EQ(after.epoch, 2u);
  const JoinResult direct = QueryJoins(*s2, jq, Unlimited());
  ASSERT_EQ(after.hits.size(), direct.hits.size());
  for (size_t i = 0; i < after.hits.size(); ++i) {
    EXPECT_TRUE(SameJoinHit(after.hits[i], direct.hits[i]));
  }
  EXPECT_GE(engine.cache_stats().invalidated, 1u);
}

TEST(QueryEngineTest, WallClockBudgetedQueriesBypassCache) {
  QueryEngine engine(PinnedOptions(), 1, UnlimitedCache());
  engine.Refresh(ServeCorpus());
  QueryBudget timed;
  timed.time_budget_ms = 10000;  // live wall-clock budget: not cacheable
  const JoinQuery jq{0, std::nullopt, 100};
  EXPECT_FALSE(engine.Joins(jq, timed).from_cache);
  EXPECT_FALSE(engine.Joins(jq, timed).from_cache);
  const ResultCacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.stores, 0u);
  EXPECT_EQ(stats.hits, 0u);
}

TEST(QueryEngineTest, OneByteCacheBudgetNeverChangesResults) {
  QueryEngineOptions tiny;
  tiny.result_cache_budget = 1;  // every store declines: cache is off
  tiny.client_queue_capacity = 64;
  QueryEngine engine(PinnedOptions(), 1, tiny);
  engine.Refresh(ServeCorpus());
  const JoinQuery jq{0, std::nullopt, 100};
  const JoinResult cold = engine.Joins(jq, Unlimited());
  const JoinResult warm = engine.Joins(jq, Unlimited());
  EXPECT_FALSE(warm.from_cache);
  ASSERT_EQ(warm.hits.size(), cold.hits.size());
  for (size_t i = 0; i < cold.hits.size(); ++i) {
    EXPECT_TRUE(SameJoinHit(warm.hits[i], cold.hits[i]));
  }
  EXPECT_EQ(engine.cache_stats().entries, 0u);
}

TEST(QueryEngineTest, ClientTaggedSubmissionsMatchSyncAndAreAccounted) {
  QueryEngine engine(PinnedOptions(), 2, UnlimitedCache());
  engine.Refresh(ServeCorpus());
  const JoinQuery jq{0, std::nullopt, 100};
  auto fa = engine.SubmitJoins("alice", jq, Unlimited());
  auto fb = engine.SubmitKeywords("bob", {"traffic", 100}, Unlimited());
  const JoinResult sync = engine.Joins(jq, Unlimited());
  const JoinResult async = fa.get();
  ASSERT_EQ(async.hits.size(), sync.hits.size());
  for (size_t i = 0; i < sync.hits.size(); ++i) {
    EXPECT_TRUE(SameJoinHit(async.hits[i], sync.hits[i]));
  }
  EXPECT_FALSE(fb.get().hits.empty());
  EXPECT_EQ(engine.client_stats("alice").submitted, 1u);
  EXPECT_EQ(engine.client_stats("alice").completed, 1u);
  EXPECT_EQ(engine.client_stats("bob").submitted, 1u);
  EXPECT_EQ(engine.client_stats("never-seen").submitted, 0u);
}

// ------------------------------------------------------ fair scheduler

TEST(RequestSchedulerTest, StatsTrackInFlightWork) {
  SchedulerOptions options;
  options.threads = 1;
  options.client_queue_capacity = 8;
  RequestScheduler scheduler(options);

  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::promise<void> started;
  auto running = scheduler.Submit("steady", [&started, opened] {
    started.set_value();
    opened.wait();
  });
  started.get_future().wait();  // the task is on the worker, not queued
  auto queued = scheduler.Submit("steady", [] {});

  RequestScheduler::Stats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.in_flight, 1u);  // the blocked task is *running*
  EXPECT_EQ(stats.queued, 1u);     // only the second is waiting
  EXPECT_EQ(stats.completed, 0u);

  gate.set_value();
  running.get();
  queued.get();
  stats = scheduler.stats();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.in_flight, 0u);
  EXPECT_EQ(stats.queued, 0u);
}

TEST(RequestSchedulerTest, DeficitRoundRobinHonorsClientWeights) {
  SchedulerOptions options;
  options.threads = 1;
  options.client_queue_capacity = 64;
  std::vector<std::string> order;
  std::mutex order_mu;
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::promise<void> blocked;
  {
    RequestScheduler scheduler(options);
    scheduler.SetClientWeight("greedy", 2);
    auto blocker = scheduler.Submit("greedy", [&blocked, opened] {
      blocked.set_value();
      opened.wait();
    });
    blocked.get_future().wait();  // the single worker is pinned
    const auto record = [&order, &order_mu](std::string tag) {
      return [&order, &order_mu, tag = std::move(tag)] {
        std::lock_guard<std::mutex> lock(order_mu);
        order.push_back(tag);
      };
    };
    std::vector<std::future<void>> futures;
    for (int i = 1; i <= 6; ++i) {
      futures.push_back(
          scheduler.Submit("greedy", record("g" + std::to_string(i))));
    }
    for (int c = 1; c <= 2; ++c) {
      for (int i = 1; i <= 3; ++i) {
        futures.push_back(scheduler.Submit(
            "bg" + std::to_string(c),
            record("b" + std::to_string(c) + std::to_string(i))));
      }
    }
    gate.set_value();
    for (auto& f : futures) f.get();
    blocker.get();
  }
  // Weight 2 earns the greedy client two dispatches per ring turn; the
  // weight-1 background clients still land every round — bounded delay,
  // no starvation.
  const std::vector<std::string> expected = {"g1", "g2", "b11", "b21",
                                             "g3", "g4", "b12", "b22",
                                             "g5", "g6", "b13", "b23"};
  EXPECT_EQ(order, expected);
}

TEST(RequestSchedulerTest, FullClientQueueShedsWithResourceExhausted) {
  SchedulerOptions options;
  options.threads = 1;
  options.client_queue_capacity = 1;
  RequestScheduler scheduler(options);
  EXPECT_EQ(scheduler.client_queue_capacity(), 1u);

  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::promise<void> started;
  auto blocker = scheduler.Submit("other", [&started, opened] {
    started.set_value();
    opened.wait();
  });
  started.get_future().wait();

  auto admitted = scheduler.Submit("burst", [] { return 1; });
  auto shed_a = scheduler.Submit("burst", [] { return 2; });
  auto shed_b = scheduler.Submit("burst", [] { return 3; });
  gate.set_value();

  EXPECT_EQ(admitted.get(), 1);
  for (auto* f : {&shed_a, &shed_b}) {
    try {
      f->get();
      FAIL() << "shed submission delivered a value";
    } catch (const SchedulerRejectedError& e) {
      EXPECT_EQ(e.status().code(), StatusCode::kResourceExhausted);
      EXPECT_NE(std::string(e.what()).find("burst"), std::string::npos);
    }
  }
  blocker.get();
  const RequestScheduler::Stats stats = scheduler.stats();
  EXPECT_EQ(stats.shed, 2u);
  EXPECT_EQ(stats.submitted, 2u);  // blocker + the one admitted burst task
  const RequestScheduler::ClientStats burst = scheduler.client_stats("burst");
  EXPECT_EQ(burst.submitted, 1u);
  EXPECT_EQ(burst.shed, 2u);
}

TEST(RequestSchedulerTest, ClientQueueCapacityEnvResolution) {
  EXPECT_EQ(ResolveClientQueueCapacity(5), 5u);
  ::setenv("OGDP_CLIENT_QUEUE_CAP", "9", 1);
  EXPECT_EQ(ResolveClientQueueCapacity(0), 9u);
  ::setenv("OGDP_CLIENT_QUEUE_CAP", "not-a-number", 1);
  EXPECT_EQ(ResolveClientQueueCapacity(0), 1024u);
  ::unsetenv("OGDP_CLIENT_QUEUE_CAP");
  EXPECT_EQ(ResolveClientQueueCapacity(0), 1024u);
}

// The cached-path TSan target: reader threads issue cached sync queries
// and client-tagged async queries while the main thread republishes new
// epochs. Every observed result must byte-match the precomputed expected
// result for the epoch stamped on it — a stale cache entry, a torn swap,
// or a mis-keyed insert would surface as a mismatch.
TEST(QueryEngineTest, CachedQueriesUnderRefreshMatchTheirEpoch) {
  constexpr int kEpochs = 4;
  std::vector<std::vector<Table>> corpora;
  for (int e = 0; e < kEpochs; ++e) {
    std::vector<Table> corpus = ServeCorpus();
    for (int extra = 0; extra < e; ++extra) {
      corpus.push_back(IdTable("extra " + std::to_string(extra), "transport",
                               "segment_x" + std::to_string(extra), 1, 20,
                               extra + 1));
    }
    corpora.push_back(std::move(corpus));
  }
  const JoinQuery query{0, std::nullopt, 10};
  // Expected result per epoch, computed against independently built
  // snapshots before the engine exists (epochs are publication counts).
  std::vector<JoinResult> expected(kEpochs + 1);
  for (int e = 0; e < kEpochs; ++e) {
    expected[e + 1] = QueryJoins(
        *BuildIndexSnapshot(corpora[e], PinnedOptions(), e + 1), query,
        Unlimited());
  }
  const auto matches_epoch = [&expected](const JoinResult& got) {
    if (got.epoch == 0 || got.epoch > static_cast<uint64_t>(kEpochs)) {
      return false;
    }
    const JoinResult& want = expected[got.epoch];
    if (got.hits.size() != want.hits.size() ||
        got.candidates_considered != want.candidates_considered) {
      return false;
    }
    for (size_t i = 0; i < want.hits.size(); ++i) {
      if (!SameJoinHit(got.hits[i], want.hits[i])) return false;
    }
    return true;
  };

  QueryEngine engine(PinnedOptions(), 2, UnlimitedCache());
  engine.Refresh(corpora[0]);
  std::atomic<bool> done{false};
  std::atomic<bool> mismatch{false};
  std::atomic<size_t> observed{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      const std::string client = "reader-" + std::to_string(r);
      while (!done.load(std::memory_order_relaxed)) {
        if (!matches_epoch(engine.Joins(query, Unlimited()))) {
          mismatch.store(true);
          return;
        }
        std::future<JoinResult> f =
            engine.SubmitJoins(client, query, Unlimited());
        try {
          if (!matches_epoch(f.get())) {
            mismatch.store(true);
            return;
          }
        } catch (const SchedulerRejectedError&) {
          // Load shedding under the stress burst is legal; correctness
          // covers delivered results only.
        }
        observed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int e = 1; e < kEpochs; ++e) {
    engine.Refresh(corpora[e]);  // cached readers keep querying throughout
  }
  const size_t target = observed.load() + 8;
  while (observed.load() < target && !mismatch.load()) {
  }
  done.store(true);
  for (std::thread& reader : readers) reader.join();
  EXPECT_FALSE(mismatch.load());
  EXPECT_EQ(engine.version(), static_cast<uint64_t>(kEpochs));
  EXPECT_GT(observed.load(), 0u);
}

TEST(SnapshotRegistryTest, PublishSwapsAndVersions) {
  SnapshotRegistry registry;
  EXPECT_EQ(registry.Acquire(), nullptr);
  EXPECT_EQ(registry.version(), 0u);
  const auto first = BuildIndexSnapshot(ServeCorpus(), PinnedOptions(), 1);
  EXPECT_EQ(registry.Publish(first), 1u);
  EXPECT_EQ(registry.Acquire(), first);
  const auto second = BuildIndexSnapshot(ServeCorpus(), PinnedOptions(), 2);
  EXPECT_EQ(registry.Publish(second), 2u);
  EXPECT_EQ(registry.Acquire(), second);
  EXPECT_EQ(registry.version(), 2u);
}

}  // namespace
}  // namespace ogdp::serve
