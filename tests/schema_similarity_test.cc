// Tests for relaxed (q-gram name based) schema similarity and
// near-unionable pair discovery.

#include <gtest/gtest.h>

#include "table/table.h"
#include "union/schema_similarity.h"

namespace ogdp::tunion {
namespace {

using table::DataType;
using table::Schema;
using table::Table;

TEST(NameQGramTest, Basics) {
  EXPECT_DOUBLE_EQ(NameQGramSimilarity("year", "year"), 1.0);
  EXPECT_DOUBLE_EQ(NameQGramSimilarity("Year", " year "), 1.0);
  EXPECT_GT(NameQGramSimilarity("value_2020", "value_2021"), 0.5);
  EXPECT_LT(NameQGramSimilarity("province", "amount"), 0.2);
  EXPECT_DOUBLE_EQ(NameQGramSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(NameQGramSimilarity("abc", ""), 0.0);
  // Short names fall back to whole-string grams.
  EXPECT_DOUBLE_EQ(NameQGramSimilarity("id", "id"), 1.0);
}

Schema MakeSchema(
    const std::vector<std::pair<std::string, DataType>>& fields) {
  Schema s;
  for (const auto& [name, type] : fields) s.AddField(name, type);
  return s;
}

TEST(SchemaSimilarityTest, IdenticalIsOne) {
  Schema a = MakeSchema({{"year", DataType::kInteger},
                         {"value", DataType::kDecimal}});
  EXPECT_DOUBLE_EQ(SchemaSimilarity(a, a), 1.0);
}

TEST(SchemaSimilarityTest, RenamedSuffixStaysHigh) {
  Schema a = MakeSchema({{"entity_code", DataType::kString},
                         {"amount_2020", DataType::kInteger}});
  Schema b = MakeSchema({{"entity_code", DataType::kString},
                         {"amount_2021", DataType::kInteger}});
  EXPECT_GT(SchemaSimilarity(a, b), 0.8);
}

TEST(SchemaSimilarityTest, TypeIncompatibilityBlocksMatch) {
  Schema a = MakeSchema({{"count", DataType::kInteger}});
  Schema b = MakeSchema({{"count", DataType::kString}});
  EXPECT_DOUBLE_EQ(SchemaSimilarity(a, b), 0.0);
}

TEST(SchemaSimilarityTest, NormalizedByLargerSchema) {
  Schema a = MakeSchema({{"year", DataType::kInteger}});
  Schema b = MakeSchema({{"year", DataType::kInteger},
                         {"alpha", DataType::kString},
                         {"beta", DataType::kString},
                         {"gamma", DataType::kString}});
  EXPECT_NEAR(SchemaSimilarity(a, b), 0.25, 1e-9);
}

TEST(SchemaSimilarityTest, GreedyMatchingUsesEachFieldOnce) {
  // Two near-identical names on one side must not both match the single
  // field on the other.
  Schema a = MakeSchema({{"value_1", DataType::kInteger},
                         {"value_2", DataType::kInteger}});
  Schema b = MakeSchema({{"value_1", DataType::kInteger}});
  EXPECT_LE(SchemaSimilarity(a, b), 0.55);
}

Table MakeTable(const std::string& name,
                const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows) {
  auto t = Table::FromRecords(name, header, rows);
  return std::move(t).value();
}

TEST(FindNearUnionableTest, FindsRenamedVariantsSkipsExact) {
  std::vector<Table> tables;
  tables.push_back(MakeTable("a", {"entity", "amount_2020"},
                             {{"x", "1"}, {"y", "2"}}));
  tables.push_back(MakeTable("b", {"entity", "amount_2021"},
                             {{"z", "3"}, {"w", "4"}}));
  tables.push_back(MakeTable("c", {"entity", "amount_2020"},
                             {{"p", "5"}, {"q", "6"}}));  // exact dup of a
  tables.push_back(MakeTable("d", {"alpha", "beta"},
                             {{"p", "q"}, {"r", "s"}}));
  auto pairs = FindNearUnionablePairs(tables, 0.7);
  ASSERT_EQ(pairs.size(), 1u);
  // a/c share an exact schema (excluded); (a-or-c, b) is near-unionable.
  EXPECT_EQ(pairs[0].table_a, 0u);
  EXPECT_EQ(pairs[0].table_b, 1u);
  EXPECT_GT(pairs[0].similarity, 0.7);
  EXPECT_LT(pairs[0].similarity, 1.0);
}

TEST(FindNearUnionableTest, EmptyCorpus) {
  EXPECT_TRUE(FindNearUnionablePairs({}, 0.7).empty());
}

// Regression: twin schemas with identical names but INT vs DOUBLE columns
// have distinct fingerprints yet score exactly 1.0 (numeric types are
// union-compatible). They used to be silently dropped by a `sim >= 1.0`
// skip intended for exact duplicates — which the fingerprint grouping
// already excludes.
TEST(FindNearUnionableTest, IntDoubleTwinSchemasAreReported) {
  std::vector<Table> tables;
  tables.push_back(MakeTable("ints", {"entity", "amount"},
                             {{"x", "1"}, {"y", "2"}}));
  tables.push_back(MakeTable("doubles", {"entity", "amount"},
                             {{"z", "1.5"}, {"w", "2.5"}}));
  ASSERT_NE(tables[0].GetSchema().Fingerprint(),
            tables[1].GetSchema().Fingerprint());

  auto pairs = FindNearUnionablePairs(tables, 0.7);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].table_a, 0u);
  EXPECT_EQ(pairs[0].table_b, 1u);
  EXPECT_DOUBLE_EQ(pairs[0].similarity, 1.0);
}

}  // namespace
}  // namespace ogdp::tunion
