// Tests for approximate (g3) FD mining and the accidental-vs-real FD
// plausibility scoring.

#include <gtest/gtest.h>

#include "fd/approximate_fd.h"
#include "fd/fd_miner.h"
#include "table/table.h"
#include "util/rng.h"

namespace ogdp::fd {
namespace {

using table::Table;

Table MakeTable(const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows) {
  auto t = Table::FromRecords("t", header, rows);
  EXPECT_TRUE(t.ok());
  return std::move(t).value();
}

TEST(FdErrorTest, ZeroWhenFdHolds) {
  Table t = MakeTable({"city", "prov"},
                      {{"W", "ON"}, {"T", "ON"}, {"M", "QC"}, {"W", "ON"}});
  EXPECT_DOUBLE_EQ(FdError(t, {SingletonSet(0), 1}), 0.0);
}

TEST(FdErrorTest, CountsMinimalRemovals) {
  // city -> prov violated by exactly one of the four W rows.
  Table t = MakeTable({"city", "prov"}, {{"W", "ON"},
                                         {"W", "ON"},
                                         {"W", "ON"},
                                         {"W", "QC"},  // dirty row
                                         {"M", "QC"}});
  EXPECT_DOUBLE_EQ(FdError(t, {SingletonSet(0), 1}), 1.0 / 5.0);
  // prov -> city: ON group fine (all W); QC group has W and M -> remove 1.
  EXPECT_DOUBLE_EQ(FdError(t, {SingletonSet(1), 0}), 1.0 / 5.0);
}

TEST(FdErrorTest, TrivialAndEmpty) {
  Table t = MakeTable({"a"}, {{"1"}, {"2"}});
  EXPECT_DOUBLE_EQ(FdError(t, {SingletonSet(0), 0}), 0.0);  // trivial
  Table empty = MakeTable({"a", "b"}, {});
  EXPECT_DOUBLE_EQ(FdError(empty, {SingletonSet(0), 1}), 0.0);
}

TEST(MineApproximateFdsTest, RecoversDirtyFd) {
  // city -> prov holds on 19 of 20 rows: invisible to the exact miner,
  // found with max_error 0.1.
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 10; ++i) rows.push_back({"W", "ON", std::to_string(i)});
  for (int i = 0; i < 9; ++i) {
    rows.push_back({"M", "QC", std::to_string(10 + i)});
  }
  rows.push_back({"W", "QC", "19"});  // the dirty row
  Table t = MakeTable({"city", "prov", "id"}, rows);

  auto exact = MineFun(t);
  ASSERT_TRUE(exact.ok());
  bool exact_found = false;
  for (const auto& f : exact->fds) {
    exact_found |= f.lhs == SingletonSet(0) && f.rhs == 1;
  }
  EXPECT_FALSE(exact_found);

  ApproxFdOptions options;
  options.max_error = 0.1;
  auto approx = MineApproximateFds(t, options);
  ASSERT_TRUE(approx.ok());
  bool approx_found = false;
  for (const auto& af : *approx) {
    if (af.fd.lhs == SingletonSet(0) && af.fd.rhs == 1) {
      approx_found = true;
      EXPECT_NEAR(af.error, 0.05, 1e-9);
    }
  }
  EXPECT_TRUE(approx_found);
}

TEST(MineApproximateFdsTest, MinimalityAcrossLevels) {
  // a -> c holds approximately; {a, b} -> c must then not be reported.
  std::vector<std::vector<std::string>> rows;
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const std::string a = std::to_string(i % 5);
    rows.push_back({a, std::to_string(rng.NextBounded(4)), "v" + a});
  }
  Table t = MakeTable({"a", "b", "c"}, rows);
  ApproxFdOptions options;
  options.max_error = 0.0;
  auto approx = MineApproximateFds(t, options);
  ASSERT_TRUE(approx.ok());
  for (const auto& af : *approx) {
    if (af.fd.rhs == 2) {
      EXPECT_EQ(SetSize(af.fd.lhs), 1u) << af.fd.ToString();
    }
  }
}

TEST(MineApproximateFdsTest, AgreesWithExactAtZeroError) {
  // At max_error 0, the |LHS|=1 approximate FDs equal FUN's exact ones.
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::vector<std::string>> rows;
    const size_t n = 30 + rng.NextBounded(60);
    for (size_t i = 0; i < n; ++i) {
      std::vector<std::string> row;
      for (int c = 0; c < 4; ++c) {
        row.push_back(std::to_string(rng.NextBounded(4)));
      }
      rows.push_back(row);
    }
    Table t = MakeTable({"c0", "c1", "c2", "c3"}, rows);
    ApproxFdOptions options;
    options.max_error = 0.0;
    options.max_lhs = 1;
    auto approx = MineApproximateFds(t, options);
    auto exact = MineFun(t);
    ASSERT_TRUE(approx.ok());
    ASSERT_TRUE(exact.ok());
    std::vector<FunctionalDependency> exact_lhs1;
    for (const auto& f : exact->fds) {
      if (SetSize(f.lhs) == 1) exact_lhs1.push_back(f);
    }
    std::vector<FunctionalDependency> approx_fds;
    for (const auto& af : *approx) approx_fds.push_back(af.fd);
    std::sort(approx_fds.begin(), approx_fds.end());
    std::sort(exact_lhs1.begin(), exact_lhs1.end());
    EXPECT_EQ(approx_fds, exact_lhs1);
  }
}

TEST(FdEvidenceTest, WitnessRatio) {
  // city groups: W x3, T x1, M x1 -> 3 of 5 rows witnessed, 1 group.
  Table t = MakeTable({"city", "prov"}, {{"W", "ON"},
                                         {"W", "ON"},
                                         {"W", "ON"},
                                         {"T", "ON"},
                                         {"M", "QC"}});
  FdEvidence e = ComputeFdEvidence(t, {SingletonSet(0), 1});
  EXPECT_DOUBLE_EQ(e.witness_ratio, 0.6);
  EXPECT_EQ(e.witness_groups, 1u);
  EXPECT_EQ(e.lhs_distinct, 3u);
  EXPECT_EQ(e.rhs_distinct, 2u);
}

TEST(FdPlausibilityTest, RealRuleBeatsVacuousFd) {
  // Real rule: city (repeats heavily) -> province (smaller domain).
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 60; ++i) {
    const int city = i % 6;
    rows.push_back({"city" + std::to_string(city),
                    "prov" + std::to_string(city / 3),
                    std::to_string(i)});  // near-unique column
  }
  Table t = MakeTable({"city", "prov", "seq"}, rows);
  const double real = ScoreFdPlausibility(t, {SingletonSet(0), 1});
  // Vacuous: the near-unique seq column "determines" city trivially.
  const double vacuous = ScoreFdPlausibility(t, {SingletonSet(2), 0});
  EXPECT_GT(real, 0.6);
  EXPECT_LT(vacuous, 0.35);
  EXPECT_GT(real, vacuous + 0.3);
}

}  // namespace
}  // namespace ogdp::fd
