// Unit and property tests for FD discovery (FUN + TANE), candidate keys,
// and BCNF decomposition.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "fd/bcnf.h"
#include "fd/candidate_keys.h"
#include "fd/fd.h"
#include "fd/fd_miner.h"
#include "table/projection.h"
#include "table/table.h"
#include "util/rng.h"

namespace ogdp::fd {
namespace {

using table::Table;

Table MakeTable(const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows) {
  auto t = Table::FromRecords("t", header, rows);
  EXPECT_TRUE(t.ok()) << t.status();
  return std::move(t).value();
}

// city -> province holds; id is a key.
Table CityTable() {
  return MakeTable({"id", "city", "province"},
                   {{"1", "Waterloo", "ON"},
                    {"2", "Toronto", "ON"},
                    {"3", "Montreal", "QC"},
                    {"4", "Waterloo", "ON"},
                    {"5", "Quebec City", "QC"},
                    {"6", "Toronto", "ON"}});
}

TEST(FdHoldsTest, DirectCheck) {
  Table t = CityTable();
  EXPECT_TRUE(FdHolds(t, {SingletonSet(1), 2}));   // city -> province
  EXPECT_FALSE(FdHolds(t, {SingletonSet(2), 1}));  // province -> city
  EXPECT_TRUE(FdHolds(t, {SingletonSet(0), 1}));   // key -> anything
  EXPECT_TRUE(FdHolds(t, {SingletonSet(1), 1}));   // trivial
}

TEST(FdHoldsTest, NullsCompareEqual) {
  Table t = MakeTable({"a", "b"}, {{"", "x"}, {"", "x"}, {"1", "y"}});
  EXPECT_TRUE(FdHolds(t, {SingletonSet(0), 1}));
  Table t2 = MakeTable({"a", "b"}, {{"", "x"}, {"", "y"}});
  EXPECT_FALSE(FdHolds(t2, {SingletonSet(0), 1}));
}

TEST(IsSuperkeyTest, Basics) {
  Table t = CityTable();
  EXPECT_TRUE(IsSuperkey(t, SingletonSet(0)));
  EXPECT_FALSE(IsSuperkey(t, SingletonSet(1)));
  EXPECT_TRUE(IsSuperkey(t, SingletonSet(0) | SingletonSet(1)));
}

TEST(MineFunTest, FindsCityProvince) {
  Table t = CityTable();
  auto result = MineFun(t);
  ASSERT_TRUE(result.ok());
  // city -> province is the only minimal non-trivial FD with a non-key
  // LHS (id-based FDs are excluded as key-LHS).
  ASSERT_EQ(result->fds.size(), 1u);
  EXPECT_EQ(result->fds[0].lhs, SingletonSet(1));
  EXPECT_EQ(result->fds[0].rhs, 2u);
  // id is the only single-column candidate key.
  ASSERT_FALSE(result->candidate_keys.empty());
  EXPECT_EQ(result->candidate_keys[0], SingletonSet(0));
}

TEST(MineFunTest, ConstantColumnYieldsEmptyLhsFd) {
  Table t = MakeTable({"a", "b"},
                      {{"x", "1"}, {"x", "2"}, {"x", "3"}, {"x", "2"}});
  auto result = MineFun(t);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->fds.size(), 1u);
  EXPECT_EQ(result->fds[0].lhs, 0u);  // {} -> a
  EXPECT_EQ(result->fds[0].rhs, 0u);
}

TEST(MineFunTest, CompositeLhs) {
  // (a, b) -> c, but neither a -> c nor b -> c.
  Table t = MakeTable({"a", "b", "c", "d"},
                      {{"1", "1", "x", "p"},
                       {"1", "2", "y", "q"},
                       {"2", "1", "y", "r"},
                       {"2", "2", "x", "s"},
                       {"1", "1", "x", "t"},
                       {"2", "1", "y", "u"}});
  auto result = MineFun(t);
  ASSERT_TRUE(result.ok());
  const AttributeSet ab = SingletonSet(0) | SingletonSet(1);
  bool found = false;
  for (const auto& f : result->fds) {
    if (f.lhs == ab && f.rhs == 2) found = true;
    // Minimality: no singleton LHS determines c.
    EXPECT_FALSE(f.rhs == 2 && SetSize(f.lhs) == 1);
  }
  EXPECT_TRUE(found);
}

TEST(MineFunTest, RespectsMaxLhs) {
  // c is determined only by {a,b,d} (3 attributes); with max_lhs=2 the FD
  // must not be reported.
  Table t = MakeTable({"a", "b", "d", "c"},
                      {{"1", "1", "1", "x"},
                       {"1", "1", "2", "y"},
                       {"1", "2", "1", "z"},
                       {"2", "1", "1", "w"},
                       {"1", "1", "1", "x"},
                       {"1", "1", "2", "y"},
                       {"1", "2", "1", "z"},
                       {"2", "1", "1", "w"}});
  FdMinerOptions options;
  options.max_lhs = 2;
  auto result = MineFun(t, options);
  ASSERT_TRUE(result.ok());
  for (const auto& f : result->fds) {
    EXPECT_LE(SetSize(f.lhs), 2u);
  }
}

// Property: every FD that FUN reports actually holds, is minimal, and has
// a non-key LHS. Random tables with planted structure.
class FdPropertyTest : public ::testing::TestWithParam<int> {};

Table RandomTable(uint64_t seed) {
  Rng rng(seed);
  const size_t rows = 20 + rng.NextBounded(120);
  const size_t cols = 3 + rng.NextBounded(5);
  std::vector<std::string> header;
  for (size_t c = 0; c < cols; ++c) header.push_back("c" + std::to_string(c));
  std::vector<std::vector<std::string>> data(rows);
  for (size_t c = 0; c < cols; ++c) {
    const size_t domain = 1 + rng.NextBounded(8);
    for (size_t r = 0; r < rows; ++r) {
      data[r].push_back(std::to_string(rng.NextBounded(domain)));
    }
  }
  return MakeTable(header, data);
}

TEST_P(FdPropertyTest, MinedFdsHoldAndAreMinimal) {
  Table t = RandomTable(1000 + GetParam());
  auto result = MineFun(t);
  ASSERT_TRUE(result.ok());
  for (const auto& f : result->fds) {
    EXPECT_TRUE(FdHolds(t, f)) << f.ToString();
    EXPECT_FALSE(IsSuperkey(t, f.lhs)) << f.ToString();
    for (size_t b : SetMembers(f.lhs)) {
      FunctionalDependency smaller{Remove(f.lhs, b), f.rhs};
      EXPECT_FALSE(FdHolds(t, smaller))
          << f.ToString() << " not minimal: " << smaller.ToString();
    }
  }
}

TEST_P(FdPropertyTest, FunAndTaneAgree) {
  Table t = RandomTable(2000 + GetParam());
  auto fun = MineFun(t);
  auto tane = MineTane(t);
  ASSERT_TRUE(fun.ok());
  ASSERT_TRUE(tane.ok());
  EXPECT_EQ(fun->fds, tane->fds);
}

TEST_P(FdPropertyTest, CandidateKeysAreMinimalKeys) {
  Table t = RandomTable(3000 + GetParam());
  auto result = MineFun(t);
  ASSERT_TRUE(result.ok());
  for (AttributeSet key : result->candidate_keys) {
    EXPECT_TRUE(IsSuperkey(t, key));
    for (size_t b : SetMembers(key)) {
      EXPECT_FALSE(IsSuperkey(t, Remove(key, b)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTables, FdPropertyTest,
                         ::testing::Range(0, 25));

// Same properties on tables with injected nulls (nulls compare equal in
// FD semantics) and wider schemas.
class FdNullPropertyTest : public ::testing::TestWithParam<int> {};

Table RandomTableWithNulls(uint64_t seed) {
  Rng rng(seed);
  const size_t rows = 20 + rng.NextBounded(80);
  const size_t cols = 4 + rng.NextBounded(6);
  std::vector<std::string> header;
  for (size_t c = 0; c < cols; ++c) header.push_back("c" + std::to_string(c));
  std::vector<std::vector<std::string>> data(rows);
  for (size_t c = 0; c < cols; ++c) {
    const size_t domain = 1 + rng.NextBounded(6);
    const double null_rate = rng.NextDouble() * 0.3;
    for (size_t r = 0; r < rows; ++r) {
      data[r].push_back(rng.NextBool(null_rate)
                            ? std::string("n/a")
                            : std::to_string(rng.NextBounded(domain)));
    }
  }
  return MakeTable(header, data);
}

TEST_P(FdNullPropertyTest, MinedFdsHoldUnderNullEquality) {
  Table t = RandomTableWithNulls(9000 + GetParam());
  auto result = MineFun(t);
  ASSERT_TRUE(result.ok());
  for (const auto& f : result->fds) {
    EXPECT_TRUE(FdHolds(t, f)) << f.ToString();
    for (size_t b : SetMembers(f.lhs)) {
      EXPECT_FALSE(FdHolds(t, {Remove(f.lhs, b), f.rhs}))
          << f.ToString() << " not minimal";
    }
  }
}

TEST_P(FdNullPropertyTest, FunAndTaneAgreeWithNulls) {
  Table t = RandomTableWithNulls(9500 + GetParam());
  auto fun = MineFun(t);
  auto tane = MineTane(t);
  ASSERT_TRUE(fun.ok());
  ASSERT_TRUE(tane.ok());
  EXPECT_EQ(fun->fds, tane->fds);
  EXPECT_EQ(fun->candidate_keys, tane->candidate_keys);
}

INSTANTIATE_TEST_SUITE_P(RandomNullTables, FdNullPropertyTest,
                         ::testing::Range(0, 20));

TEST(CandidateKeysTest, CompositeMinimum) {
  // (a, b) is the minimal key.
  Table t = MakeTable({"a", "b", "v"},
                      {{"1", "1", "x"},
                       {"1", "2", "x"},
                       {"2", "1", "y"},
                       {"2", "2", "y"}});
  auto keys = FindCandidateKeys(t);
  ASSERT_TRUE(keys.ok());
  ASSERT_TRUE(keys->min_key_size.has_value());
  EXPECT_EQ(*keys->min_key_size, 2u);
}

TEST(CandidateKeysTest, NoKeyWithinLimit) {
  // Duplicate rows: no key at all.
  Table t = MakeTable({"a", "b"}, {{"1", "1"}, {"1", "1"}, {"2", "1"}});
  auto keys = FindCandidateKeys(t);
  ASSERT_TRUE(keys.ok());
  EXPECT_FALSE(keys->min_key_size.has_value());
}

TEST(BcnfTest, DecomposesCityProvince) {
  Table t = CityTable();
  auto result = DecomposeToBcnf(t);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->steps, 1u);
  ASSERT_EQ(result->tables.size(), 2u);
  // One sub-table is {city, province} deduplicated to the 4 distinct
  // cities.
  bool found_dim = false;
  for (const auto& sub : result->tables) {
    if (sub.ColumnIndex("province").has_value()) {
      found_dim = true;
      EXPECT_EQ(sub.num_columns(), 2u);
      EXPECT_EQ(sub.num_rows(), 4u);
    }
  }
  EXPECT_TRUE(found_dim);
}

TEST(BcnfTest, AlreadyBcnf) {
  Table t = MakeTable({"a", "b"}, {{"1", "x"}, {"2", "y"}, {"3", "x"}});
  auto result = DecomposeToBcnf(t);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->steps, 0u);
  EXPECT_EQ(result->tables.size(), 1u);
}

// Property: BCNF decomposition is lossless — joining the sub-tables back
// on their shared columns reproduces exactly the distinct rows of the
// original table. Verified by projecting the original on each sub-table's
// columns and checking row counts after the textbook pairwise check.
TEST_P(FdPropertyTest, DecompositionSubTablesAreProjections) {
  Table t = RandomTable(4000 + GetParam());
  auto result = DecomposeToBcnf(t);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->tables.size(), result->column_origins.size());
  for (size_t i = 0; i < result->tables.size(); ++i) {
    const Table expected =
        table::ProjectDistinct(t, result->column_origins[i], "p");
    EXPECT_EQ(result->tables[i].num_rows(), expected.num_rows());
    EXPECT_EQ(result->tables[i].num_columns(), expected.num_columns());
  }
}

TEST(BcnfTest, UniquenessGainsOnPrejoinedTable) {
  // A table that is literally a join: entity (city -> province) fanned out
  // 5x. The province column's uniqueness must rise by about the fanout.
  std::vector<std::vector<std::string>> rows;
  for (int e = 0; e < 8; ++e) {
    for (int k = 0; k < 5; ++k) {
      rows.push_back({"city" + std::to_string(e),
                      "prov" + std::to_string(e / 4),
                      std::to_string(e * 5 + k)});
    }
  }
  Table t = MakeTable({"city", "province", "event"}, rows);
  auto result = DecomposeToBcnf(t);
  ASSERT_TRUE(result.ok());
  ASSERT_GT(result->steps, 0u);
  std::vector<double> gains = UniquenessGains(t, *result);
  ASSERT_FALSE(gains.empty());
  double max_gain = *std::max_element(gains.begin(), gains.end());
  EXPECT_GT(max_gain, 3.0);
}

}  // namespace
}  // namespace ogdp::fd
