// Tests for null semantics, dictionary-encoded columns, type inference,
// schemas, tables, and distinct projection.

#include <gtest/gtest.h>

#include "csv/csv_reader.h"
#include "table/column.h"
#include "table/data_type.h"
#include "table/null_semantics.h"
#include "table/projection.h"
#include "table/schema.h"
#include "table/table.h"
#include "table/type_inference.h"

namespace ogdp::table {
namespace {

TEST(NullSemanticsTest, PaperTokenList) {
  // §3.3: empty plus "n/a", "n/d", "nan", "null", "-", "...".
  for (const char* token :
       {"", " ", "n/a", "N/A", "n/d", "nan", "NaN", "null", "NULL", "-",
        "...", "  null  "}) {
    EXPECT_TRUE(IsNullToken(token)) << "'" << token << "'";
  }
  for (const char* value :
       {"0", "none", "na", "x", "--", "-1", "nanometer", "nullable"}) {
    EXPECT_FALSE(IsNullToken(value)) << "'" << value << "'";
  }
}

Column MakeColumn(const std::vector<std::string>& cells,
                  const std::string& name = "c") {
  Column col(name);
  for (const auto& cell : cells) col.AppendCell(cell);
  col.InferType();
  return col;
}

TEST(ColumnTest, DictionaryEncoding) {
  Column c = MakeColumn({"x", "y", "x", "", "x"});
  EXPECT_EQ(c.size(), 5u);
  EXPECT_EQ(c.distinct_count(), 2u);
  EXPECT_EQ(c.null_count(), 1u);
  EXPECT_EQ(c.code(0), c.code(2));
  EXPECT_EQ(c.code(3), Column::kNullCode);
  EXPECT_TRUE(c.IsNull(3));
  EXPECT_EQ(c.ValueAt(0), "x");
  EXPECT_EQ(c.ValueAt(3), "");
}

TEST(ColumnTest, UniquenessScoreAndKey) {
  // |set(c)| / |c| per §4.1.
  Column repeats = MakeColumn({"a", "a", "b", "b"});
  EXPECT_DOUBLE_EQ(repeats.UniquenessScore(), 0.5);
  EXPECT_FALSE(repeats.IsKey());

  Column key = MakeColumn({"1", "2", "3"});
  EXPECT_DOUBLE_EQ(key.UniquenessScore(), 1.0);
  EXPECT_TRUE(key.IsKey());

  // Nulls disqualify a key even with distinct non-null values.
  Column with_null = MakeColumn({"1", "2", ""});
  EXPECT_FALSE(with_null.IsKey());
}

TEST(ColumnTest, ValuesTrimmed) {
  Column c = MakeColumn({" x ", "x"});
  EXPECT_EQ(c.distinct_count(), 1u);
}

TEST(TypeInferenceTest, IncrementalVsPlainInteger) {
  // Near-sequential unique ids -> incremental (Table 10's dominant type).
  Column ids = MakeColumn({"1", "2", "3", "4", "5", "6", "7", "8"});
  EXPECT_EQ(ids.type(), DataType::kIncrementalInteger);

  // Repeated years are plain integers.
  Column years = MakeColumn({"2020", "2020", "2021", "2021", "2020"});
  EXPECT_EQ(years.type(), DataType::kInteger);

  // Sparse unique integers are not incremental.
  Column sparse = MakeColumn({"5", "900", "17", "22222", "104"});
  EXPECT_EQ(sparse.type(), DataType::kInteger);
}

TEST(TypeInferenceTest, BooleanTrimsBeforeLengthCheck) {
  // Regression: the length early-out used to run before trimming, so
  // padded spellings longer than 5 bytes ("  true ") were rejected while
  // short padded ones (" yes ") passed.
  EXPECT_TRUE(LooksLikeBoolean("  true "));
  EXPECT_TRUE(LooksLikeBoolean(" FALSE  "));
  EXPECT_TRUE(LooksLikeBoolean(" yes "));
  EXPECT_TRUE(LooksLikeBoolean("\tn\t"));
  EXPECT_FALSE(LooksLikeBoolean(" maybe "));
  EXPECT_FALSE(LooksLikeBoolean("  truely  "));
  EXPECT_EQ(MakeColumn({"  true ", " no ", "YES"}).type(),
            DataType::kBoolean);
}

TEST(TypeInferenceTest, DecimalAndBoolean) {
  EXPECT_EQ(MakeColumn({"1.5", "2.25", "-3.75"}).type(), DataType::kDecimal);
  EXPECT_EQ(MakeColumn({"1", "2", "2.5"}).type(), DataType::kDecimal);
  EXPECT_EQ(MakeColumn({"true", "false", "true"}).type(), DataType::kBoolean);
  EXPECT_EQ(MakeColumn({"Yes", "no", "YES"}).type(), DataType::kBoolean);
}

TEST(TypeInferenceTest, Timestamps) {
  EXPECT_EQ(MakeColumn({"2021-03-14", "2021-03-15"}).type(),
            DataType::kTimestamp);
  EXPECT_EQ(MakeColumn({"14/03/2021", "15/03/2021"}).type(),
            DataType::kTimestamp);
  EXPECT_EQ(MakeColumn({"2021-03-14 12:30", "2021-03-15T08:00"}).type(),
            DataType::kTimestamp);
  // A non-date member forces the column out of the timestamp class.
  EXPECT_NE(MakeColumn({"2021-13-99", "x"}).type(), DataType::kTimestamp);
}

TEST(TypeInferenceTest, Geospatial) {
  EXPECT_EQ(MakeColumn({"43.46,-80.52", "45.50,-73.56"}).type(),
            DataType::kGeospatial);
  EXPECT_EQ(MakeColumn({"(43.46, -80.52)", "(45.50, -73.56)"}).type(),
            DataType::kGeospatial);
  EXPECT_EQ(MakeColumn({"POINT (30 10)", "POINT (40 20)"}).type(),
            DataType::kGeospatial);
  // Out-of-range coordinates are not geospatial.
  EXPECT_NE(MakeColumn({"999.0,5.0", "998.0,4.0"}).type(),
            DataType::kGeospatial);
}

TEST(TypeInferenceTest, CategoricalVsString) {
  // Low cardinality with repetition: categorical.
  std::vector<std::string> cells;
  for (int i = 0; i < 100; ++i) cells.push_back("status_" + std::to_string(i % 4));
  EXPECT_EQ(MakeColumn(cells).type(), DataType::kCategorical);

  // High distinctness text: string.
  cells.clear();
  for (int i = 0; i < 100; ++i) cells.push_back("entry " + std::to_string(i));
  EXPECT_EQ(MakeColumn(cells).type(), DataType::kString);
}

TEST(TypeInferenceTest, AllNull) {
  EXPECT_EQ(MakeColumn({"", "n/a", "-"}).type(), DataType::kNull);
}

TEST(TypeInferenceTest, BroadClasses) {
  EXPECT_TRUE(IsNumericType(DataType::kIncrementalInteger));
  EXPECT_TRUE(IsNumericType(DataType::kDecimal));
  EXPECT_TRUE(IsTextType(DataType::kCategorical));
  EXPECT_TRUE(IsTextType(DataType::kTimestamp));
  EXPECT_FALSE(IsTextType(DataType::kInteger));
  EXPECT_FALSE(IsNumericType(DataType::kString));
}

TEST(SchemaTest, FingerprintAndEquivalence) {
  Schema a;
  a.AddField("Year", DataType::kInteger);
  a.AddField("Value", DataType::kDecimal);
  Schema b;
  b.AddField("year ", DataType::kInteger);  // case/space-insensitive
  b.AddField("value", DataType::kDecimal);
  EXPECT_TRUE(a.EquivalentTo(b));
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());

  Schema c;
  c.AddField("year", DataType::kInteger);
  c.AddField("value", DataType::kInteger);  // type differs
  EXPECT_FALSE(a.EquivalentTo(c));
  EXPECT_NE(a.Fingerprint(), c.Fingerprint());

  Schema d;  // order matters
  d.AddField("value", DataType::kDecimal);
  d.AddField("year", DataType::kInteger);
  EXPECT_FALSE(a.EquivalentTo(d));
}

TEST(TableTest, FromRecordsBuildsTypedColumns) {
  auto t = Table::FromRecords(
      "t", {"id", "name", "amount"},
      {{"1", "alpha", "10.5"}, {"2", "beta", ""}, {"3", "alpha", "7.25"}});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 3u);
  EXPECT_EQ(t->num_columns(), 3u);
  EXPECT_EQ(t->column(0).type(), DataType::kIncrementalInteger);
  EXPECT_EQ(t->column(2).type(), DataType::kDecimal);
  EXPECT_EQ(t->column(2).null_count(), 1u);
  EXPECT_EQ(*t->ColumnIndex("name"), 1u);
  EXPECT_FALSE(t->ColumnIndex("missing").has_value());
}

TEST(TableTest, ShortRowsPaddedWithNulls) {
  auto t = Table::FromRecords("t", {"a", "b"}, {{"1"}, {"2", "x"}});
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->column(1).IsNull(0));
  EXPECT_EQ(t->column(1).ValueAt(1), "x");
}

TEST(TableTest, WideRowRejected) {
  auto t = Table::FromRecords("t", {"a"}, {{"1", "2"}});
  EXPECT_FALSE(t.ok());
}

TEST(TableTest, CsvRoundTrip) {
  auto t = Table::FromRecords(
      "t", {"a", "b"}, {{"x,1", "2"}, {"he said \"hi\"", ""}});
  ASSERT_TRUE(t.ok());
  const std::string csv = t->ToCsvString();
  auto records = csv::CsvReader::ParseString(csv);
  ASSERT_TRUE(records.ok());
  auto t2 = Table::FromRecords("t2", (*records)[0],
                               {records->begin() + 1, records->end()});
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t2->column(0).ValueAt(0), "x,1");
  EXPECT_EQ(t2->column(0).ValueAt(1), "he said \"hi\"");
  EXPECT_TRUE(t2->column(1).IsNull(1));
}

TEST(ProjectionTest, DistinctAndOrderPreserving) {
  auto t = Table::FromRecords("t", {"a", "b", "c"},
                              {{"1", "x", "p"},
                               {"2", "x", "q"},
                               {"1", "x", "r"},
                               {"3", "y", "s"}});
  ASSERT_TRUE(t.ok());
  Table p = ProjectDistinct(*t, {0, 1}, "p");
  EXPECT_EQ(p.num_rows(), 3u);  // (1,x), (2,x), (3,y)
  EXPECT_EQ(p.num_columns(), 2u);
  EXPECT_EQ(p.column(0).ValueAt(0), "1");
  EXPECT_EQ(p.column(1).ValueAt(2), "y");

  // Column order follows the index list, including reordering.
  Table q = ProjectDistinct(*t, {1, 0}, "q");
  EXPECT_EQ(q.column(0).name(), "b");
}

TEST(ProjectionTest, NullsCompareEqual) {
  auto t = Table::FromRecords("t", {"a"}, {{""}, {"n/a"}, {"x"}});
  ASSERT_TRUE(t.ok());
  Table p = ProjectDistinct(*t, {0}, "p");
  EXPECT_EQ(p.num_rows(), 2u);  // null and "x"
}

}  // namespace
}  // namespace ogdp::table
