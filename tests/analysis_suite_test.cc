// Tests for the one-call analysis suite and semi-normalized link
// detection.

#include <gtest/gtest.h>

#include "core/analysis_suite.h"
#include "corpus/portal_profile.h"
#include "join/joinable_pair_finder.h"

namespace ogdp::core {
namespace {

class AnalysisSuiteTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bundle_ = new PortalBundle(
        MakePortalBundle(corpus::CaPortalProfile(), 0.08));
  }
  static void TearDownTestSuite() {
    delete bundle_;
    bundle_ = nullptr;
  }
  static PortalBundle* bundle_;
};

PortalBundle* AnalysisSuiteTest::bundle_ = nullptr;

TEST_F(AnalysisSuiteTest, RunsEveryAnalysisConsistently) {
  PortalAnalysis a = RunFullAnalysis(*bundle_);
  EXPECT_EQ(a.portal_name, "CA");
  EXPECT_EQ(a.size.total_datasets, bundle_->portal.datasets.size());
  EXPECT_EQ(a.metadata.total, bundle_->portal.datasets.size());
  EXPECT_EQ(a.table_sizes.rows_per_table.size(),
            bundle_->ingest.tables.size());
  EXPECT_EQ(a.keys.size1 + a.keys.size2 + a.keys.size3 + a.keys.none,
            a.keys.total);
  EXPECT_EQ(a.fds.sample_tables, a.keys.total);
  EXPECT_LE(a.joins.joinable_tables, a.joins.total_tables);
  EXPECT_LE(a.unions.unionable_tables, a.unions.total_tables);
  EXPECT_FALSE(a.labeled_joins.empty());
}

TEST_F(AnalysisSuiteTest, RenderMentionsEverySection) {
  PortalAnalysis a = RunFullAnalysis(*bundle_);
  const std::string report = RenderPortalAnalysis(a);
  for (const char* needle :
       {"Portal CA", "datasets", "median rows", "uniqueness",
        "non-trivial FD", "BCNF", "joinable pairs", "unionable"}) {
    EXPECT_NE(report.find(needle), std::string::npos) << needle;
  }
}

TEST_F(AnalysisSuiteTest, DetectsIntraDatasetKeyLinks) {
  join::JoinablePairFinder finder(bundle_->ingest.tables);
  auto pairs = finder.FindAllPairs();
  auto links =
      DetectSemiNormalizedLinks(bundle_->ingest.tables, finder, pairs);
  // The CA profile publishes semi-normalized datasets, so designed links
  // must be found, all intra-dataset, all with a key side, all at very
  // high overlap.
  ASSERT_GT(links.size(), 0u);
  for (const auto& link : links) {
    const auto& ta = bundle_->ingest.tables[link.pair.a.table];
    const auto& tb = bundle_->ingest.tables[link.pair.b.table];
    EXPECT_EQ(ta.dataset_id(), tb.dataset_id());
    EXPECT_EQ(ta.dataset_id(), link.dataset_id);
    EXPECT_NE(link.key_combo, join::KeyCombination::kNonkeyNonkey);
    EXPECT_GE(link.pair.jaccard, 0.95);
  }
}

}  // namespace
}  // namespace ogdp::core
