// Tests for the ogdp::util concurrency primitives (ThreadPool,
// ParallelFor, ParallelMap) and for the determinism guarantee of the
// parallelized analysis pipeline: every parallel path must produce
// byte-identical results at any thread count.

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "core/analysis_suite.h"
#include "corpus/portal_profile.h"
#include "join/joinable_pair_finder.h"
#include "util/parallel.h"

namespace ogdp {
namespace {

// Restores the global thread count after each test so test order never
// matters.
class ParallelTest : public ::testing::Test {
 protected:
  ~ParallelTest() override { util::SetGlobalThreadCount(0); }
};

TEST_F(ParallelTest, ThreadPoolRunsEveryTaskOnce) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::vector<std::atomic<int>> runs(1000);
  pool.RunTasks(runs.size(),
                [&](size_t i) { runs[i].fetch_add(1, std::memory_order_relaxed); });
  for (const auto& r : runs) EXPECT_EQ(r.load(), 1);
}

TEST_F(ParallelTest, ThreadPoolZeroTasksIsANoOp) {
  util::ThreadPool pool(4);
  pool.RunTasks(0, [&](size_t) { FAIL() << "task ran for empty batch"; });
}

TEST_F(ParallelTest, ThreadPoolSingleThreadRunsInline) {
  util::ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::vector<int> order;
  pool.RunTasks(5, [&](size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST_F(ParallelTest, ThreadPoolReusableAcrossBatches) {
  util::ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> sum{0};
    pool.RunTasks(64, [&](size_t i) {
      sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 64 * 63 / 2);
  }
}

TEST_F(ParallelTest, ParallelForEmptyRange) {
  util::SetGlobalThreadCount(4);
  bool ran = false;
  util::ParallelFor(5, 5, [&](size_t) { ran = true; });
  util::ParallelFor(7, 3, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST_F(ParallelTest, ParallelForCoversRangeExactlyOnce) {
  util::SetGlobalThreadCount(8);
  std::vector<std::atomic<int>> runs(10000);
  util::ParallelFor(0, runs.size(), [&](size_t i) {
    runs[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& r : runs) ASSERT_EQ(r.load(), 1);
}

TEST_F(ParallelTest, ParallelForSerialWhenOneThread) {
  util::SetGlobalThreadCount(1);
  std::vector<size_t> order;  // no synchronization: must run on the caller
  util::ParallelFor(3, 8, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{3, 4, 5, 6, 7}));
}

TEST_F(ParallelTest, ParallelForPropagatesExceptions) {
  util::SetGlobalThreadCount(4);
  EXPECT_THROW(
      util::ParallelFor(
          0, 256,
          [](size_t i) {
            if (i == 97) throw std::runtime_error("boom");
          },
          /*grain=*/1),
      std::runtime_error);
}

TEST_F(ParallelTest, ParallelForNestedFallsBackToSerial) {
  util::SetGlobalThreadCount(4);
  std::vector<std::atomic<int>> cells(32 * 32);
  util::ParallelFor(0, 32, [&](size_t i) {
    util::ParallelFor(0, 32, [&](size_t j) {
      cells[i * 32 + j].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (const auto& c : cells) ASSERT_EQ(c.load(), 1);
}

TEST_F(ParallelTest, ParallelForChunksCoverRange) {
  util::SetGlobalThreadCount(4);
  std::vector<std::atomic<int>> runs(5000);
  util::ParallelForChunks(0, runs.size(), [&](size_t lo, size_t hi) {
    ASSERT_LT(lo, hi);
    for (size_t i = lo; i < hi; ++i) {
      runs[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (const auto& r : runs) ASSERT_EQ(r.load(), 1);
}

TEST_F(ParallelTest, ParallelMapReturnsResultsInIndexOrder) {
  util::SetGlobalThreadCount(8);
  const auto out =
      util::ParallelMap(1000, [](size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 1000u);
  for (size_t i = 0; i < out.size(); ++i) ASSERT_EQ(out[i], i * i);
}

TEST_F(ParallelTest, HeavyFirstScheduleIsAPermutationSortedByCost) {
  const std::vector<int> cost = {3, 9, 1, 9, 5};
  const auto order =
      util::HeavyFirstSchedule(cost.size(), [&](size_t i) { return cost[i]; });
  EXPECT_EQ(order, (std::vector<size_t>{1, 3, 4, 0, 2}));
}

TEST_F(ParallelTest, GlobalThreadCountOverride) {
  util::SetGlobalThreadCount(3);
  EXPECT_EQ(util::GlobalThreadCount(), 3u);
  util::SetGlobalThreadCount(0);
  EXPECT_EQ(util::GlobalThreadCount(), util::ConfiguredThreadCount());
  EXPECT_GE(util::ConfiguredThreadCount(), 1u);
}

// ------------------------------------------------------------ determinism

// The full pipeline on a small corpus must produce identical output at 1,
// 2, and 8 threads: same generated portal, same rendered analysis, same
// joinable pairs, same token profiles.
TEST_F(ParallelTest, FullAnalysisIsByteIdenticalAcrossThreadCounts) {
  struct Snapshot {
    std::string rendered;
    std::vector<join::JoinablePair> pairs;
    std::vector<std::vector<uint32_t>> tokens;
    size_t dictionary_size = 0;
  };
  auto snapshot = [](size_t threads) {
    util::SetGlobalThreadCount(threads);
    const core::PortalBundle bundle =
        core::MakePortalBundle(corpus::CaPortalProfile(), /*scale=*/0.05);
    core::AnalysisSuiteOptions options;
    options.compress = true;
    Snapshot s;
    s.rendered = core::RenderPortalAnalysis(RunFullAnalysis(bundle, options));
    join::JoinablePairFinder finder(bundle.ingest.tables);
    s.pairs = finder.FindAllPairs();
    for (const auto& set : finder.column_sets()) s.tokens.push_back(set.tokens);
    s.dictionary_size = finder.dictionary_size();
    return s;
  };

  const Snapshot serial = snapshot(1);
  EXPECT_FALSE(serial.rendered.empty());
  for (size_t threads : {2u, 8u}) {
    const Snapshot parallel = snapshot(threads);
    EXPECT_EQ(serial.rendered, parallel.rendered) << "threads=" << threads;
    EXPECT_EQ(serial.pairs, parallel.pairs) << "threads=" << threads;
    EXPECT_EQ(serial.tokens, parallel.tokens) << "threads=" << threads;
    EXPECT_EQ(serial.dictionary_size, parallel.dictionary_size)
        << "threads=" << threads;
  }
}

// The filtered parallel search must agree with the serial brute-force
// verifier on a corpus large enough to exercise multi-chunk probing.
TEST_F(ParallelTest, FindAllPairsMatchesBruteForceWhenParallel) {
  util::SetGlobalThreadCount(8);
  const core::PortalBundle bundle =
      core::MakePortalBundle(corpus::SgPortalProfile(), /*scale=*/0.1);
  join::JoinablePairFinder finder(bundle.ingest.tables);
  EXPECT_EQ(finder.FindAllPairs(), finder.FindAllPairsBruteForce());
}

}  // namespace
}  // namespace ogdp
