// Coverage for small utilities: Stopwatch, Column memory accounting,
// CsvWriter::Flush, ingestion byte accounting, and catalog contents.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/ingestion.h"
#include "corpus/corpus_io.h"
#include "corpus/generator.h"
#include "corpus/portal_profile.h"
#include "csv/csv_reader.h"
#include "csv/csv_writer.h"
#include "table/column.h"
#include "util/stopwatch.h"

namespace ogdp {
namespace {

TEST(StopwatchTest, MonotoneAndRestartable) {
  Stopwatch sw;
  const double t1 = sw.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  const double t2 = sw.ElapsedSeconds();
  EXPECT_GE(t2, t1);
  sw.Restart();
  EXPECT_LE(sw.ElapsedSeconds(), t2 + 1.0);
  EXPECT_GE(sw.ElapsedMillis(), 0.0);
}

TEST(ColumnMemoryTest, GrowsWithContent) {
  table::Column small("c");
  small.AppendCell("x");
  table::Column big("c");
  for (int i = 0; i < 1000; ++i) {
    big.AppendCell("value_" + std::to_string(i));
  }
  EXPECT_GT(big.MemoryUsage(), small.MemoryUsage());
  EXPECT_GT(big.MemoryUsage(), 1000u * sizeof(uint32_t));
}

TEST(CsvWriterFlushTest, WritesFileAndErrorsOnBadPath) {
  csv::CsvWriter writer;
  writer.WriteRecord({"a", "b"});
  writer.WriteRecord({"1", "2,x"});
  const std::string path =
      (std::filesystem::temp_directory_path() / "ogdp_flush_test.csv")
          .string();
  ASSERT_TRUE(writer.Flush(path).ok());
  auto parsed = csv::CsvReader::ReadFile(path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ((*parsed)[1][1], "2,x");
  std::filesystem::remove(path);

  EXPECT_FALSE(writer.Flush("/nonexistent_dir_xyz/file.csv").ok());
}

TEST(IngestionByteAccountingTest, TotalsMatchPerTableSizes) {
  corpus::CorpusGenerator gen(corpus::SgPortalProfile(), 0.04);
  auto g = gen.Generate();
  core::IngestResult r = core::IngestPortal(g.portal);
  uint64_t sum = 0;
  for (const auto& t : r.tables) {
    EXPECT_GT(t.csv_size_bytes(), 0u);
    sum += t.csv_size_bytes();
  }
  EXPECT_EQ(sum, r.stats.total_bytes);
}

TEST(CatalogTest, ListsEveryDataset) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "ogdp_catalog_test")
          .string();
  std::filesystem::remove_all(dir);
  corpus::CorpusGenerator gen(corpus::SgPortalProfile(), 0.03);
  auto g = gen.Generate();
  ASSERT_TRUE(corpus::WritePortalToDirectory(g.portal, dir).ok());
  auto catalog = csv::CsvReader::ReadFile(dir + "/catalog.csv");
  ASSERT_TRUE(catalog.ok());
  // Header + one row per dataset.
  EXPECT_EQ(catalog->size(), g.portal.datasets.size() + 1);
  EXPECT_EQ((*catalog)[0][0], "dataset_id");
  // Every row's dataset id exists in the portal.
  for (size_t i = 1; i < catalog->size(); ++i) {
    bool found = false;
    for (const auto& ds : g.portal.datasets) {
      found |= ds.id == (*catalog)[i][0];
    }
    EXPECT_TRUE(found) << (*catalog)[i][0];
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ogdp
