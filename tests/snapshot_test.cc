// Tests for the temporal portal snapshots: epoch determinism, the
// resource-level diff (including content-identical renames), churn
// mechanics, and the degenerate no-churn / full-churn profiles.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/portal_model.h"
#include "corpus/portal_profile.h"
#include "corpus/snapshot.h"

namespace ogdp::corpus {
namespace {

// A tiny two-dataset portal with fixed CSV bytes, for targeted diffs.
PortalSnapshot TinySnapshot() {
  PortalSnapshot snap;
  snap.portal.name = "tiny";
  for (int d = 0; d < 2; ++d) {
    core::Dataset ds;
    ds.id = "ds" + std::to_string(d);
    for (int r = 0; r < 2; ++r) {
      core::Resource res;
      res.name = "r" + std::to_string(d) + std::to_string(r) + ".csv";
      res.claimed_format = "CSV";
      res.content = "id,value\n1," + std::to_string(10 * d + r) + "\n2,9\n";
      ds.resources.push_back(res);

      TableTruth tt;
      tt.dataset_id = ds.id;
      tt.table_name = res.name;
      snap.truth.AddTable(std::move(tt));
    }
    snap.portal.datasets.push_back(ds);
  }
  return snap;
}

std::vector<uint64_t> AllContentHashes(const core::Portal& portal) {
  std::vector<uint64_t> hashes;
  for (const auto& ds : portal.datasets) {
    for (const auto& r : ds.resources) {
      hashes.push_back(ResourceContentHash(r));
    }
  }
  return hashes;
}

TEST(SnapshotTest, ChainIsDeterministic) {
  const auto a = GenerateSnapshotChain(SgPortalProfile(), 0.05, 3);
  const auto b = GenerateSnapshotChain(SgPortalProfile(), 0.05, 3);
  ASSERT_EQ(a.size(), 3u);
  ASSERT_EQ(b.size(), 3u);
  for (size_t e = 0; e < a.size(); ++e) {
    EXPECT_EQ(a[e].epoch, e);
    EXPECT_EQ(AllContentHashes(a[e].portal), AllContentHashes(b[e].portal));
    const SnapshotDiff diff = DiffSnapshots(a[e].portal, b[e].portal);
    EXPECT_EQ(diff.added, 0u);
    EXPECT_EQ(diff.removed, 0u);
    EXPECT_EQ(diff.updated, 0u);
  }
}

TEST(SnapshotTest, ChainActuallyChurns) {
  const auto chain = GenerateSnapshotChain(UkPortalProfile(), 0.08, 4);
  size_t changed_epochs = 0;
  for (size_t e = 1; e < chain.size(); ++e) {
    const SnapshotDiff diff =
        DiffSnapshots(chain[e - 1].portal, chain[e].portal);
    changed_epochs += diff.added + diff.removed + diff.updated > 0;
  }
  // The UK profile is update-heavy; a 4-epoch chain that never changes
  // means the churn machinery is dead.
  EXPECT_GT(changed_epochs, 0u);
}

TEST(SnapshotTest, EmptyDeltaIsNoOp) {
  const PortalSnapshot snap = TinySnapshot();
  const SnapshotDiff diff = DiffSnapshots(snap.portal, snap.portal);
  EXPECT_EQ(diff.added, 0u);
  EXPECT_EQ(diff.removed, 0u);
  EXPECT_EQ(diff.updated, 0u);
  EXPECT_EQ(diff.unchanged, 4u);
  EXPECT_EQ(diff.renames_detected, 0u);
  for (const ResourceDelta& d : diff.deltas) {
    EXPECT_EQ(d.change, ResourceChange::kUnchanged);
    EXPECT_FALSE(d.renamed_content_identical);
  }
}

TEST(SnapshotTest, ZeroChurnAdvanceKeepsBytes) {
  const PortalSnapshot snap = TinySnapshot();
  ChurnProfile still;
  still.dataset_add_rate = 0;
  still.dataset_remove_rate = 0;
  still.resource_update_rate = 0;
  still.resource_rename_rate = 0;
  const PortalSnapshot next = AdvanceEpoch(snap, still, 1);
  EXPECT_EQ(next.epoch, 1u);
  EXPECT_EQ(AllContentHashes(next.portal), AllContentHashes(snap.portal));
  const SnapshotDiff diff = DiffSnapshots(snap.portal, next.portal);
  EXPECT_EQ(diff.unchanged, 4u);
}

TEST(SnapshotTest, RenameIsContentIdenticalAndDetected) {
  const PortalSnapshot snap = TinySnapshot();
  PortalSnapshot renamed = snap;
  renamed.portal.datasets[0].resources[1].name = "renamed.csv";

  const SnapshotDiff diff = DiffSnapshots(snap.portal, renamed.portal);
  EXPECT_EQ(diff.added, 1u);
  EXPECT_EQ(diff.removed, 1u);
  EXPECT_EQ(diff.updated, 0u);
  EXPECT_EQ(diff.unchanged, 3u);
  EXPECT_EQ(diff.renames_detected, 1u);
  size_t flagged = 0;
  for (const ResourceDelta& d : diff.deltas) {
    if (d.renamed_content_identical) {
      ++flagged;
      EXPECT_TRUE(d.change == ResourceChange::kAdded ||
                  d.change == ResourceChange::kRemoved);
    }
  }
  EXPECT_EQ(flagged, 2u);  // both sides of the rename

  // The content-addressed cache keys on bytes, so the renamed resource
  // must hash identically to its previous incarnation.
  EXPECT_EQ(ResourceContentHash(snap.portal.datasets[0].resources[1]),
            ResourceContentHash(renamed.portal.datasets[0].resources[1]));
}

TEST(SnapshotTest, RenameChurnRekeysTruth) {
  const PortalSnapshot snap = TinySnapshot();
  ChurnProfile churn;
  churn.dataset_add_rate = 0;
  churn.dataset_remove_rate = 0;
  churn.resource_update_rate = 0;
  churn.resource_rename_rate = 1.0;  // rename everything
  const PortalSnapshot next = AdvanceEpoch(snap, churn, 1);

  const SnapshotDiff diff = DiffSnapshots(snap.portal, next.portal);
  EXPECT_EQ(diff.renames_detected, 4u);
  EXPECT_EQ(diff.updated, 0u);
  for (const auto& ds : next.portal.datasets) {
    for (const auto& r : ds.resources) {
      EXPECT_NE(r.name, "");  // renamed, not dropped
      EXPECT_NE(next.truth.Find(ds.id, r.name), nullptr)
          << "truth not re-keyed for " << r.name;
    }
  }
}

TEST(SnapshotTest, SchemaDriftChangesContentHash) {
  const PortalSnapshot snap = TinySnapshot();
  ChurnProfile churn;
  churn.dataset_add_rate = 0;
  churn.dataset_remove_rate = 0;
  churn.resource_update_rate = 1.0;
  churn.resource_rename_rate = 0;
  churn.append_weight = 0;
  churn.edit_weight = 0;
  churn.drift_weight = 1.0;  // every update is a schema drift
  const PortalSnapshot next = AdvanceEpoch(snap, churn, 1);

  const SnapshotDiff diff = DiffSnapshots(snap.portal, next.portal);
  EXPECT_EQ(diff.updated, 4u);
  EXPECT_EQ(diff.unchanged, 0u);
  // Drift invalidates every content-addressed artifact: each drifted
  // resource must hash to new bytes, and the header must have grown.
  const auto before = AllContentHashes(snap.portal);
  const auto after = AllContentHashes(next.portal);
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) EXPECT_NE(before[i], after[i]);
  for (const auto& ds : next.portal.datasets) {
    for (const auto& r : ds.resources) {
      const std::string header = r.content.substr(0, r.content.find('\n'));
      EXPECT_GT(header.size(), std::string("id,value").size()) << r.name;
    }
  }
}

TEST(SnapshotTest, FullRemovalChurnEmptiesPortal) {
  const PortalSnapshot snap = TinySnapshot();
  ChurnProfile churn;
  churn.dataset_add_rate = 0;
  churn.dataset_remove_rate = 1.0;
  churn.resource_update_rate = 0;
  churn.resource_rename_rate = 0;
  const PortalSnapshot next = AdvanceEpoch(snap, churn, 1);
  EXPECT_TRUE(next.portal.datasets.empty());
  const SnapshotDiff diff = DiffSnapshots(snap.portal, next.portal);
  EXPECT_EQ(diff.removed, 4u);
  EXPECT_EQ(diff.unchanged, 0u);
}

}  // namespace
}  // namespace ogdp::corpus
