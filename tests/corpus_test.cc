// Tests for the synthetic portal generator: determinism, ground truth,
// labeling oracles, domain library, and disk round trips.

#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "core/ingestion.h"
#include "corpus/corpus_io.h"
#include "corpus/domains.h"
#include "corpus/generator.h"
#include "corpus/ground_truth.h"
#include "corpus/portal_profile.h"
#include "corpus/table_synth.h"
#include "table/null_semantics.h"

namespace ogdp::corpus {
namespace {

TEST(DomainsTest, FixedVocabularies) {
  EXPECT_EQ(CanadianProvinces().size(), 13u);
  EXPECT_EQ(UsStates().size(), 50u);
  EXPECT_EQ(UkRegions().size(), 12u);
  EXPECT_GE(SgDistricts().size(), 20u);
}

TEST(DomainsTest, PoolsDeterministicAndDistinct) {
  auto a = MakeNamePool(1, "org.health", 50);
  auto b = MakeNamePool(1, "org.health", 50);
  auto c = MakeNamePool(1, "org.budget", 50);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(std::set<std::string>(a.begin(), a.end()).size(), 50u);
}

TEST(DomainsTest, CodePoolsDisjointAcrossTags) {
  // Same prefix letters and size, different tags: values must not collide
  // (the bug class that once made every series pairwise joinable).
  auto a = MakeCodePool(1, "series1.entity", 40);
  auto b = MakeCodePool(1, "series2.entity", 40);
  std::set<std::string> sa(a.begin(), a.end());
  size_t overlap = 0;
  for (const auto& v : b) overlap += sa.count(v);
  EXPECT_EQ(overlap, 0u);
}

TEST(DomainsTest, HierarchyParentFunctional) {
  Hierarchy h = MakeHierarchy(1, "ind", 6, 2, 5);
  EXPECT_EQ(h.parents.size(), 6u);
  EXPECT_EQ(h.children.size(), h.parent_of.size());
  for (size_t p : h.parent_of) EXPECT_LT(p, h.parents.size());
  // Distinct children (FD child -> parent must be a function).
  EXPECT_EQ(std::set<std::string>(h.children.begin(), h.children.end()).size(),
            h.children.size());
}

TEST(DomainsTest, DomainLibraryMemoizes) {
  DomainLibrary lib(3);
  const auto& a = lib.NamePool("org.health", 30);
  const auto& b = lib.NamePool("org.health", 30);
  EXPECT_EQ(&a, &b);
}

TEST(TableSynthTest, Helpers) {
  EXPECT_EQ(IncrementalIds(3), (std::vector<std::string>{"1", "2", "3"}));
  EXPECT_EQ(IncrementalIds(2, 10), (std::vector<std::string>{"10", "11"}));
  Rng rng(5);
  auto picks = PickFromPool(rng, {"a", "b", "c"}, 100, 1.0);
  EXPECT_EQ(picks.size(), 100u);
  auto dates = SequentialDates(2021, 3, 27);
  EXPECT_EQ(dates[0], "2021-01-28");
  EXPECT_EQ(dates[1], "2021-02-01");  // 12x28 synthetic calendar
}

TEST(TableSynthTest, InjectNullsProducesRecognizedTokens) {
  Rng rng(6);
  std::vector<std::string> cells(1000, "value");
  InjectNulls(rng, cells, 0.3);
  size_t nulls = 0;
  for (const auto& c : cells) {
    if (c != "value") {
      ++nulls;
      EXPECT_TRUE(table::IsNullToken(c)) << c;
    }
  }
  EXPECT_NEAR(static_cast<double>(nulls) / 1000.0, 0.3, 0.06);
}

TEST(GeneratorTest, DeterministicAcrossRuns) {
  CorpusGenerator g1(SgPortalProfile(), 0.05);
  CorpusGenerator g2(SgPortalProfile(), 0.05);
  GeneratedPortal a = g1.Generate();
  GeneratedPortal b = g2.Generate();
  ASSERT_EQ(a.portal.datasets.size(), b.portal.datasets.size());
  for (size_t d = 0; d < a.portal.datasets.size(); ++d) {
    const auto& da = a.portal.datasets[d];
    const auto& db = b.portal.datasets[d];
    EXPECT_EQ(da.id, db.id);
    ASSERT_EQ(da.resources.size(), db.resources.size());
    for (size_t r = 0; r < da.resources.size(); ++r) {
      EXPECT_EQ(da.resources[r].content, db.resources[r].content);
    }
  }
}

TEST(GeneratorTest, GroundTruthCoversReadableTables) {
  CorpusGenerator gen(CaPortalProfile(), 0.05);
  GeneratedPortal g = gen.Generate();
  core::IngestResult ingest = core::IngestPortal(g.portal);
  ASSERT_GT(ingest.tables.size(), 0u);
  size_t found = 0;
  for (const auto& t : ingest.tables) {
    const TableTruth* truth = g.truth.Find(t.dataset_id(), t.name());
    if (truth == nullptr) continue;
    ++found;
    // Column truth aligns with the parsed table (modulo cleaning-removed
    // or appended blank columns).
    EXPECT_GE(truth->columns.size() + 3, t.num_columns());
  }
  // Nearly all readable tables must have ground truth.
  EXPECT_GT(found * 10, ingest.tables.size() * 9);
}

TEST(GeneratorTest, ScaleControlsDatasetCount) {
  GeneratedPortal small = CorpusGenerator(UsPortalProfile(), 0.02).Generate();
  GeneratedPortal large = CorpusGenerator(UsPortalProfile(), 0.06).Generate();
  EXPECT_GT(large.portal.datasets.size(), small.portal.datasets.size());
}

TEST(GroundTruthTest, JoinLabelRules) {
  GroundTruth truth;
  TableTruth a;
  a.dataset_id = "d1";
  a.table_name = "a";
  a.topic = "health";
  a.columns = {{"covid.date", ColumnTruth::Role::kPrimaryDimension},
               {"measure", ColumnTruth::Role::kMeasure}};
  TableTruth b = a;
  b.dataset_id = "d2";
  b.table_name = "b";
  TableTruth c = a;
  c.dataset_id = "d3";
  c.table_name = "c";
  c.topic = "fisheries";

  // Same topic, both primary dimension, same domain -> useful.
  EXPECT_EQ(truth.LabelJoin(a, 0, b, 0), join::JoinLabel::kUseful);
  // Same topic but a measure column involved -> R-Acc.
  EXPECT_EQ(truth.LabelJoin(a, 1, b, 0),
            join::JoinLabel::kRelatedAccidental);
  // Different topics -> U-Acc regardless of roles.
  EXPECT_EQ(truth.LabelJoin(a, 0, c, 0),
            join::JoinLabel::kUnrelatedAccidental);
}

TEST(GroundTruthTest, UnionLabelRules) {
  GroundTruth truth;
  TableTruth periodic_a, periodic_b;
  periodic_a.topic = periodic_b.topic = "labour";
  periodic_a.periodic_group = periodic_b.periodic_group = 7;
  tunion::UnionPattern pattern;
  EXPECT_EQ(truth.LabelUnion(periodic_a, periodic_b, &pattern),
            tunion::UnionLabel::kUseful);
  EXPECT_EQ(pattern, tunion::UnionPattern::kPeriodic);

  TableTruth dup_a, dup_b;
  dup_a.topic = dup_b.topic = "budget";
  dup_a.duplicate_group = dup_b.duplicate_group = 3;
  EXPECT_EQ(truth.LabelUnion(dup_a, dup_b, &pattern),
            tunion::UnionLabel::kAccidental);
  EXPECT_EQ(pattern, tunion::UnionPattern::kDuplicateTable);

  TableTruth std_a, std_b;
  std_a.standard_schema = std_b.standard_schema = true;
  std_a.topic = "health";
  std_b.topic = "tourism";
  EXPECT_EQ(truth.LabelUnion(std_a, std_b, &pattern),
            tunion::UnionLabel::kAccidental);
  EXPECT_EQ(pattern, tunion::UnionPattern::kStandardizedSchema);

  TableTruth part_a, part_b;
  part_a.topic = part_b.topic = "housing";
  part_a.partition_group = part_b.partition_group = 2;
  EXPECT_EQ(truth.LabelUnion(part_a, part_b, &pattern),
            tunion::UnionLabel::kUseful);
  EXPECT_EQ(pattern, tunion::UnionPattern::kNonTemporalPartition);
}

TEST(PortalProfilesTest, FourPortalsWithPaperTraits) {
  auto profiles = AllPortalProfiles();
  ASSERT_EQ(profiles.size(), 4u);
  EXPECT_EQ(profiles[0].name, "SG");
  EXPECT_EQ(profiles[3].name, "US");
  // SG: everything downloadable, structured metadata, no nulls to speak of.
  EXPECT_GT(profiles[0].downloadable_rate, 0.95);
  EXPECT_DOUBLE_EQ(profiles[0].meta_structured, 1.0);
  // CA: fewest downloadable tables.
  EXPECT_LT(profiles[1].downloadable_rate, 0.5);
  // US: biggest tables, duplicates pattern present.
  EXPECT_GT(profiles[3].rows_log_mean, profiles[0].rows_log_mean);
  EXPECT_GT(profiles[3].styles.duplicate, 0.0);
  for (const auto& p : profiles) {
    ASSERT_NE(p.regions, nullptr);
    EXPECT_GE(p.regions->size(), 10u);  // joinability filter needs >= 10
  }
}

TEST(CorpusIoTest, WriteAndReadBack) {
  const std::string dir = ::testing::TempDir() + "/ogdp_corpus_io";
  std::filesystem::remove_all(dir);
  GeneratedPortal g = CorpusGenerator(SgPortalProfile(), 0.03).Generate();
  ASSERT_TRUE(WritePortalToDirectory(g.portal, dir).ok());
  EXPECT_TRUE(std::filesystem::exists(dir + "/catalog.csv"));

  auto scan = ReadCsvDirectory(dir);
  ASSERT_TRUE(scan.ok());
  core::IngestResult direct = core::IngestPortal(g.portal);
  EXPECT_EQ(scan->tables.size(), direct.tables.size());
  // Skip accounting: every candidate file is either a table or a
  // counted skip, never silently dropped.
  EXPECT_EQ(scan->files_seen, scan->tables.size() + scan->skips.total());
  std::filesystem::remove_all(dir);
}

TEST(CorpusIoTest, MissingDirectoryErrors) {
  EXPECT_FALSE(ReadCsvDirectory("/does/not/exist").ok());
}

}  // namespace
}  // namespace ogdp::corpus
