// Tests for the CSV substrate: parser, writer, dialect sniffing, file-type
// detection, header inference (the paper's §2.2 heuristic), and cleaning.

#include <gtest/gtest.h>

#include "csv/cleaning.h"
#include "csv/csv_reader.h"
#include "csv/csv_writer.h"
#include "csv/dialect.h"
#include "csv/file_type_detector.h"
#include "csv/header_inference.h"
#include "util/rng.h"

namespace ogdp::csv {
namespace {

RawRecords MustParse(std::string_view text, CsvReaderOptions options = {}) {
  auto r = CsvReader::ParseString(text, options);
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

TEST(CsvReaderTest, SimpleRows) {
  RawRecords r = MustParse("a,b,c\n1,2,3\n");
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(r[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(CsvReaderTest, MissingTrailingNewline) {
  RawRecords r = MustParse("a,b\n1,2");
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[1], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvReaderTest, QuotedFieldWithDelimiter) {
  RawRecords r = MustParse("name,desc\n\"Doe, Jane\",x\n");
  EXPECT_EQ(r[1][0], "Doe, Jane");
}

TEST(CsvReaderTest, EscapedQuotes) {
  RawRecords r = MustParse("a\n\"he said \"\"hi\"\"\"\n");
  EXPECT_EQ(r[1][0], "he said \"hi\"");
}

TEST(CsvReaderTest, EmbeddedNewlineInQuotes) {
  RawRecords r = MustParse("a,b\n\"line1\nline2\",x\n");
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[1][0], "line1\nline2");
}

TEST(CsvReaderTest, CrLfAndLoneCr) {
  RawRecords r = MustParse("a,b\r\n1,2\r3,4\n");
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[1], (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(r[2], (std::vector<std::string>{"3", "4"}));
}

TEST(CsvReaderTest, Utf8BomStripped) {
  RawRecords r = MustParse("\xef\xbb\xbfid,v\n1,2\n");
  EXPECT_EQ(r[0][0], "id");
}

TEST(CsvReaderTest, BlankLinesSkipped) {
  RawRecords r = MustParse("a,b\n\n1,2\n\n");
  EXPECT_EQ(r.size(), 2u);
}

TEST(CsvReaderTest, RaggedRowsPreserved) {
  RawRecords r = MustParse("a,b,c\n1,2\n1,2,3,4\n");
  EXPECT_EQ(r[1].size(), 2u);
  EXPECT_EQ(r[2].size(), 4u);
}

TEST(CsvReaderTest, EmptyFieldsKept) {
  RawRecords r = MustParse("a,,c\n,,\n");
  EXPECT_EQ(r[0], (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(r[1], (std::vector<std::string>{"", "", ""}));
}

TEST(CsvReaderTest, MaxRecordsStopsEarly) {
  CsvReaderOptions options;
  options.max_records = 2;
  RawRecords r = MustParse("a\n1\n2\n3\n4\n", options);
  EXPECT_EQ(r.size(), 2u);
}

TEST(CsvReaderTest, StrictQuotesRejectsUnterminated) {
  CsvReaderOptions options;
  options.strict_quotes = true;
  auto r = CsvReader::ParseString("a\n\"never closed", options);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(CsvReaderTest, LoneCrRecordEnds) {
  // Classic-Mac endings: every lone \r terminates a record; a \r\r pair
  // encloses a blank line, which is skipped like any other blank line.
  RawRecords r = MustParse("a\rb\r\rc");
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0], (std::vector<std::string>{"a"}));
  EXPECT_EQ(r[1], (std::vector<std::string>{"b"}));
  EXPECT_EQ(r[2], (std::vector<std::string>{"c"}));
  // Trailing empty fields survive a lone-CR terminator.
  RawRecords s = MustParse("a,b\r1,\r");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[1], (std::vector<std::string>{"1", ""}));
}

TEST(CsvReaderTest, MaxRecordsTruncationMidQuotedField) {
  // The limit triggers while the lexer sits inside an unterminated quoted
  // field; the complete records win and the partial field is dropped.
  CsvReaderOptions options;
  options.max_records = 1;
  RawRecords r = MustParse("a,b\n\"un,finished\nstill quoted", options);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], (std::vector<std::string>{"a", "b"}));
}

TEST(CsvReaderTest, QuotedFieldAtEofWithoutNewline) {
  RawRecords r = MustParse("a,\"b\"");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], (std::vector<std::string>{"a", "b"}));
  // An empty quoted field at EOF still produces its (empty) field.
  RawRecords s = MustParse("x,\"\"");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0], (std::vector<std::string>{"x", ""}));
  // Lenient mode swallows an unterminated quote to EOF.
  RawRecords t = MustParse("a,\"bc");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0], (std::vector<std::string>{"a", "bc"}));
}

TEST(CsvReaderTest, JunkAfterClosingQuoteKept) {
  // Lenient real-world semantics: bytes after a closing quote are
  // appended to the field rather than rejected.
  RawRecords r = MustParse("\"ab\"x,c\n\"q\" ,d\n");
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0], (std::vector<std::string>{"abx", "c"}));
  EXPECT_EQ(r[1], (std::vector<std::string>{"q ", "d"}));
}

TEST(CsvReaderTest, SemicolonSniffed) {
  RawRecords r = MustParse("a;b;c\n1;2;3\n4;5;6\n");
  ASSERT_EQ(r[0].size(), 3u);
  EXPECT_EQ(r[2][1], "5");
}

TEST(CsvReaderTest, TabSniffed) {
  RawRecords r = MustParse("a\tb\n1\t2\n");
  EXPECT_EQ(r[0].size(), 2u);
}

TEST(DialectTest, CommaWinsOnMixedContent) {
  // Semicolons appear but inconsistently; commas split every line evenly.
  CsvDialect d = SniffDialect("a,b,c\n1,2,3\nx;y,2,3\n");
  EXPECT_EQ(d.delimiter, ',');
}

TEST(DialectTest, QuotedDelimiterIgnored) {
  CsvDialect d = SniffDialect("a,b\n\"x;y;z;w;v\",2\n\"p;q;r;s;t\",3\n");
  EXPECT_EQ(d.delimiter, ',');
}

TEST(CsvWriterTest, RoundTripProperty) {
  // Any field content must survive write -> parse.
  Rng rng(42);
  const std::string alphabet = "ab,\"\n\r;x ";
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::vector<std::string>> rows;
    const size_t ncols = 1 + rng.NextBounded(4);
    for (size_t r = 0; r < 5; ++r) {
      std::vector<std::string> row;
      for (size_t c = 0; c < ncols; ++c) {
        std::string field = "f";  // non-empty so blank-line skip never hits
        const size_t len = rng.NextBounded(8);
        for (size_t i = 0; i < len; ++i) {
          field += alphabet[rng.NextBounded(alphabet.size())];
        }
        row.push_back(field);
      }
      rows.push_back(row);
    }
    CsvWriter writer;
    for (const auto& row : rows) writer.WriteRecord(row);
    CsvReaderOptions options;
    options.use_explicit_dialect = true;  // content is adversarial
    auto parsed = CsvReader::ParseString(writer.contents(), options);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, rows);
  }
}

TEST(FileTypeDetectorTest, RecognizesFormats) {
  EXPECT_EQ(FileTypeDetector::Detect("a,b\n1,2\n"), FileType::kCsv);
  EXPECT_EQ(FileTypeDetector::Detect("<!DOCTYPE html><html>"),
            FileType::kHtml);
  EXPECT_EQ(FileTypeDetector::Detect("  <html><body>"), FileType::kHtml);
  EXPECT_EQ(FileTypeDetector::Detect("%PDF-1.7 blah"), FileType::kPdf);
  EXPECT_EQ(FileTypeDetector::Detect("PK\x03\x04zipdata"), FileType::kZip);
  EXPECT_EQ(FileTypeDetector::Detect("<?xml version=\"1.0\"?>"),
            FileType::kXml);
  EXPECT_EQ(FileTypeDetector::Detect("{\"k\": 1}"), FileType::kJson);
  EXPECT_EQ(FileTypeDetector::Detect(""), FileType::kEmpty);
  EXPECT_EQ(FileTypeDetector::Detect(std::string_view("\x00\x01\x02"
                                                      "a,b",
                                                      6)),
            FileType::kBinary);
}

TEST(HeaderInferenceTest, FirstCompleteRowWins) {
  // The paper's heuristic: modal width 3, first row with no missing value.
  RawRecords records = {{"Report 2020", "", ""},
                        {"id", "name", "value"},
                        {"1", "a", "10"},
                        {"2", "b", "20"}};
  HeaderInferenceResult r = InferHeader(records);
  EXPECT_EQ(r.header_row, 1u);
  EXPECT_EQ(r.header, (std::vector<std::string>{"id", "name", "value"}));
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST(HeaderInferenceTest, ModalWidthVoting) {
  // One stray 2-field line must not change the inferred width.
  RawRecords records = {{"a", "b", "c"}, {"1", "2", "3"}, {"x", "y"},
                        {"4", "5", "6"}};
  HeaderInferenceResult r = InferHeader(records);
  EXPECT_EQ(r.num_columns, 3u);
  // Narrow rows padded.
  EXPECT_EQ(r.rows[1].size(), 3u);
}

TEST(HeaderInferenceTest, FallbackSynthesizesBlankNames) {
  // Every row has a trailing blank (trailing-comma export): the first
  // minimum-missing row becomes the header, blanks named col_<i>.
  RawRecords records = {{"id", "v", ""}, {"1", "2", ""}, {"3", "4", ""}};
  HeaderInferenceResult r = InferHeader(records);
  EXPECT_EQ(r.header_row, 0u);
  EXPECT_EQ(r.header[2], "col_2");
  ASSERT_EQ(r.synthesized_names.size(), 3u);
  EXPECT_FALSE(r.synthesized_names[0]);
  EXPECT_TRUE(r.synthesized_names[2]);
}

TEST(HeaderInferenceTest, EmptyInput) {
  HeaderInferenceResult r = InferHeader({});
  EXPECT_EQ(r.num_columns, 0u);
  EXPECT_TRUE(r.rows.empty());
}

TEST(CleaningTest, RemovesTrailingBlankColumns) {
  RawRecords records = {{"id", "v", "", ""},
                        {"1", "2", "", ""},
                        {"3", "4", "", ""}};
  HeaderInferenceResult r = InferHeader(records);
  const size_t removed = RemoveTrailingEmptyColumns(r);
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(r.num_columns, 2u);
  EXPECT_EQ(r.header, (std::vector<std::string>{"id", "v"}));
  for (const auto& row : r.rows) EXPECT_EQ(row.size(), 2u);
}

TEST(CleaningTest, KeepsNamedEmptyColumn) {
  // A named but fully empty column is a (fully null) data column — the 3%
  // all-null statistic of §3.3 — and must not be removed.
  RawRecords records = {{"id", "notes"}, {"1", ""}, {"2", ""}};
  HeaderInferenceResult r = InferHeader(records);
  EXPECT_EQ(RemoveTrailingEmptyColumns(r), 0u);
  EXPECT_EQ(r.num_columns, 2u);
}

TEST(CleaningTest, WideTableFilter) {
  RawRecords records;
  std::vector<std::string> header;
  for (int i = 0; i < 150; ++i) header.push_back("c" + std::to_string(i));
  records.push_back(header);
  records.push_back(std::vector<std::string>(150, "1"));
  HeaderInferenceResult r = InferHeader(records);
  EXPECT_TRUE(IsTooWide(r));
  EXPECT_FALSE(IsTooWide(r, 200));
}

TEST(ReadFileTest, MissingFileErrors) {
  auto r = CsvReader::ReadFile("/nonexistent/path.csv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace ogdp::csv
