// Tests for the ingestion pipeline (§2.2), analysis reports, and the text
// renderer.

#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/ingestion.h"
#include "core/portal_model.h"
#include "core/report_format.h"
#include "corpus/portal_profile.h"
#include "join/joinable_pair_finder.h"

namespace ogdp::core {
namespace {

Portal TinyPortal() {
  Portal portal;
  portal.name = "T";
  Dataset ds;
  ds.id = "ds-1";
  ds.topic = "health";
  ds.metadata = MetadataPresence::kUnstructured;
  ds.publication_year = 2019;

  Resource good;
  good.name = "good.csv";
  good.claimed_format = "CSV";
  good.content = "id,v\n1,2\n3,4\n";
  ds.resources.push_back(good);

  Resource unfetchable;
  unfetchable.name = "gone.csv";
  unfetchable.claimed_format = "CSV";
  unfetchable.downloadable = false;
  ds.resources.push_back(unfetchable);

  Resource html;
  html.name = "error.csv";
  html.claimed_format = "CSV";
  html.content = "<!DOCTYPE html><html><body>404</body></html>";
  ds.resources.push_back(html);

  Resource pdf;  // not claimed CSV: ignored entirely
  pdf.name = "report.pdf";
  pdf.claimed_format = "PDF";
  pdf.content = "%PDF-1.4";
  ds.resources.push_back(pdf);

  Resource wide;
  wide.name = "wide.csv";
  wide.claimed_format = "CSV";
  {
    std::string header;
    std::string row;
    for (int i = 0; i < 120; ++i) {
      header += (i ? "," : "") + ("c" + std::to_string(i));
      row += (i ? "," : "") + std::to_string(i);
    }
    wide.content = header + "\n" + row + "\n";
  }
  ds.resources.push_back(wide);

  Resource trailing;
  trailing.name = "trailing.csv";
  trailing.claimed_format = "CSV";
  trailing.content = "a,b,,\n1,2,,\n3,4,,\n";
  ds.resources.push_back(trailing);

  portal.datasets.push_back(ds);
  return portal;
}

TEST(IngestionTest, PipelineCountersMatchPaperStages) {
  IngestResult r = IngestPortal(TinyPortal());
  EXPECT_EQ(r.stats.total_datasets, 1u);
  EXPECT_EQ(r.stats.total_tables, 5u);         // CSV-claimed only
  EXPECT_EQ(r.stats.downloadable_tables, 4u);  // one 404
  EXPECT_EQ(r.stats.rejected_not_csv, 1u);     // the HTML body
  EXPECT_EQ(r.stats.removed_wide_tables, 1u);  // 120 columns
  EXPECT_EQ(r.stats.readable_tables, 3u);      // good + wide + trailing
  EXPECT_EQ(r.tables.size(), 2u);              // wide one excluded
  EXPECT_EQ(r.stats.trailing_empty_columns_removed, 2u);

  // Provenance and dataset ids survive.
  ASSERT_EQ(r.provenance.size(), r.tables.size());
  EXPECT_EQ(r.tables[0].dataset_id(), "ds-1");
  EXPECT_EQ(r.provenance[0].publication_year, 2019);

  // The trailing-comma table kept its two real columns.
  EXPECT_EQ(r.tables[1].num_columns(), 2u);
}

class AnalysisTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bundle_ = new PortalBundle(
        MakePortalBundle(corpus::UkPortalProfile(), 0.06));
  }
  static void TearDownTestSuite() {
    delete bundle_;
    bundle_ = nullptr;
  }
  static PortalBundle* bundle_;
};

PortalBundle* AnalysisTest::bundle_ = nullptr;

TEST_F(AnalysisTest, SizeReportConsistency) {
  SizeReport r = ComputeSizeReport(*bundle_, /*compress=*/false);
  EXPECT_EQ(r.total_datasets, bundle_->portal.datasets.size());
  EXPECT_GE(r.total_tables, r.downloadable_tables);
  EXPECT_GE(r.downloadable_tables, r.readable_tables);
  EXPECT_EQ(r.table_bytes_sorted.size(), bundle_->ingest.tables.size());
  EXPECT_GE(r.max_tables_per_dataset, 1u);
  // Cumulative per-year bytes sum to the total.
  uint64_t year_sum = 0;
  for (const auto& [year, bytes] : r.bytes_by_year) year_sum += bytes;
  EXPECT_EQ(year_sum, r.total_bytes);
  EXPECT_EQ(r.compressed_bytes, 0u);  // compression disabled
}

TEST_F(AnalysisTest, MetadataReportSumsToDatasets) {
  MetadataReport r = ComputeMetadataReport(bundle_->portal);
  EXPECT_EQ(r.total, bundle_->portal.datasets.size());
  size_t sum = 0;
  for (int i = 0; i < 4; ++i) sum += r.counts[i];
  EXPECT_EQ(sum, r.total);
  EXPECT_NEAR(r.Fraction(MetadataPresence::kStructured) +
                  r.Fraction(MetadataPresence::kUnstructured) +
                  r.Fraction(MetadataPresence::kOutsidePortal) +
                  r.Fraction(MetadataPresence::kLacking),
              1.0, 1e-9);
}

TEST_F(AnalysisTest, FdSampleRespectsPaperBounds) {
  auto sample = SelectFdSample(bundle_->ingest.tables);
  for (size_t i : sample) {
    const auto& t = bundle_->ingest.tables[i];
    EXPECT_GE(t.num_rows(), 10u);
    EXPECT_LE(t.num_rows(), 10000u);
    EXPECT_GE(t.num_columns(), 5u);
    EXPECT_LE(t.num_columns(), 20u);
  }
}

TEST_F(AnalysisTest, KeyReportPartitions) {
  auto sample = SelectFdSample(bundle_->ingest.tables);
  KeyReport r = ComputeKeyReport(bundle_->ingest.tables, sample);
  EXPECT_EQ(r.size1 + r.size2 + r.size3 + r.none, r.total);
  EXPECT_EQ(r.total, sample.size());
}

TEST_F(AnalysisTest, FdReportInvariants) {
  auto sample = SelectFdSample(bundle_->ingest.tables);
  FdReport r = ComputeFdReport(bundle_->ingest.tables, sample);
  EXPECT_EQ(r.sample_tables, sample.size());
  EXPECT_LE(r.tables_with_lhs1_fd, r.tables_with_fd);
  EXPECT_EQ(r.decomposition_counts.size(), r.sample_tables);
  // A table decomposes into >1 sub-tables iff it has a non-trivial FD.
  size_t decomposed = 0;
  for (size_t c : r.decomposition_counts) {
    EXPECT_GE(c, 1u);
    if (c > 1) ++decomposed;
  }
  EXPECT_LE(decomposed, r.tables_with_fd);
  if (decomposed > 0) EXPECT_GE(r.avg_tables_after_decomp, 2.0);
}

TEST_F(AnalysisTest, JoinReportInvariants) {
  join::JoinablePairFinder finder(bundle_->ingest.tables);
  auto pairs = finder.FindAllPairs();
  JoinReport r = ComputeJoinReport(bundle_->ingest.tables, finder, pairs);
  EXPECT_EQ(r.total_pairs, pairs.size());
  EXPECT_LE(r.joinable_tables, r.total_tables);
  EXPECT_LE(r.joinable_columns, r.total_columns);
  EXPECT_EQ(r.key_joinable_columns + r.nonkey_joinable_columns,
            r.joinable_columns);
  EXPECT_LE(r.median_table_degree, static_cast<double>(r.max_table_degree));
  EXPECT_EQ(r.expansion_ratios.size(), pairs.size());
  for (double e : r.expansion_ratios) EXPECT_GE(e, 0.0);
}

TEST_F(AnalysisTest, LabeledSampleHasBucketsAndLabels) {
  join::JoinablePairFinder finder(bundle_->ingest.tables);
  auto pairs = finder.FindAllPairs();
  auto labeled = LabelJoinSample(*bundle_, finder, pairs);
  ASSERT_GT(labeled.size(), 10u);
  size_t intra = 0;
  for (const auto& lp : labeled) {
    EXPECT_GE(lp.sample.size_bucket, 0);
    EXPECT_LE(lp.sample.size_bucket, 2);
    intra += lp.intra_dataset;
    // Expansion of a pair with >= 1 key side never exceeds 1.
    if (lp.sample.key_combo != join::KeyCombination::kNonkeyNonkey) {
      EXPECT_LE(lp.expansion_ratio, 1.0 + 1e-9);
    }
  }
  EXPECT_GT(intra, 0u);
  EXPECT_LT(intra, labeled.size());
}

TEST_F(AnalysisTest, UnionReportInvariants) {
  UnionReport r = ComputeUnionReport(*bundle_, 25, 3);
  EXPECT_LE(r.unionable_tables, r.total_tables);
  EXPECT_LE(r.unionable_schemas, r.unique_schemas);
  EXPECT_LE(r.single_dataset_schemas, r.unionable_schemas);
  EXPECT_LE(r.labeled_sample.size(), 25u);
  EXPECT_GE(r.avg_tables_per_schema, 1.0);
}

TEST(TextTableTest, AlignedRendering) {
  TextTable t({"metric", "SG", "CA"});
  t.AddRow({"total tables", "2376", "14913"});
  t.AddRow({"size", "1.48 GiB"});  // short row padded
  const std::string s = t.Render();
  EXPECT_NE(s.find("metric"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  EXPECT_NE(s.find("14913"), std::string::npos);
  // Columns align: "SG" (header) and "2376" (row) start at the same
  // offset within their lines.
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < s.size()) {
    const size_t nl = s.find('\n', start);
    lines.push_back(s.substr(start, nl - start));
    if (nl == std::string::npos) break;
    start = nl + 1;
  }
  ASSERT_GE(lines.size(), 4u);
  EXPECT_EQ(lines[0].find("SG"), lines[2].find("2376"));
}

TEST(PortalModelTest, MetadataNames) {
  EXPECT_STREQ(MetadataPresenceName(MetadataPresence::kStructured),
               "structured");
  EXPECT_STREQ(MetadataPresenceName(MetadataPresence::kLacking), "lacking");
}

}  // namespace
}  // namespace ogdp::core
