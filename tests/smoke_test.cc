// End-to-end smoke test: generate a small portal, ingest it, and run every
// analysis once. Catches wiring problems before the per-module suites dig
// into details.

#include <gtest/gtest.h>

#include "core/analysis.h"
#include "corpus/portal_profile.h"
#include "join/joinable_pair_finder.h"

namespace ogdp {
namespace {

class SmokeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bundle_ = new core::PortalBundle(
        core::MakePortalBundle(corpus::CaPortalProfile(), 0.08));
  }
  static void TearDownTestSuite() {
    delete bundle_;
    bundle_ = nullptr;
  }
  static core::PortalBundle* bundle_;
};

core::PortalBundle* SmokeTest::bundle_ = nullptr;

TEST_F(SmokeTest, GeneratesAndIngests) {
  EXPECT_GT(bundle_->portal.datasets.size(), 10u);
  EXPECT_GT(bundle_->ingest.tables.size(), 10u);
  EXPECT_EQ(bundle_->ingest.tables.size(), bundle_->ingest.provenance.size());
  // CA profile: only ~41% of tables are downloadable.
  EXPECT_LT(bundle_->ingest.stats.downloadable_tables,
            bundle_->ingest.stats.total_tables);
  EXPECT_LE(bundle_->ingest.stats.readable_tables,
            bundle_->ingest.stats.downloadable_tables);
}

TEST_F(SmokeTest, SizeReport) {
  core::SizeReport r = core::ComputeSizeReport(*bundle_, /*compress=*/true);
  EXPECT_GT(r.total_bytes, 0u);
  EXPECT_GT(r.compressed_bytes, 0u);
  EXPECT_LT(r.compressed_bytes, r.total_bytes);  // CSVs compress
  EXPECT_GT(r.total_columns, 0u);
}

TEST_F(SmokeTest, MetadataReport) {
  core::MetadataReport r = core::ComputeMetadataReport(bundle_->portal);
  EXPECT_EQ(r.total, bundle_->portal.datasets.size());
}

TEST_F(SmokeTest, FdPipeline) {
  auto sample = core::SelectFdSample(bundle_->ingest.tables);
  ASSERT_GT(sample.size(), 0u);
  core::KeyReport keys = core::ComputeKeyReport(bundle_->ingest.tables, sample);
  EXPECT_EQ(keys.total, sample.size());
  core::FdReport fds = core::ComputeFdReport(bundle_->ingest.tables, sample);
  EXPECT_EQ(fds.sample_tables, sample.size());
  EXPECT_GT(fds.tables_with_fd, 0u);
}

TEST_F(SmokeTest, JoinPipeline) {
  join::JoinablePairFinder finder(bundle_->ingest.tables);
  auto pairs = finder.FindAllPairs();
  EXPECT_GT(pairs.size(), 0u);
  core::JoinReport r =
      core::ComputeJoinReport(bundle_->ingest.tables, finder, pairs);
  EXPECT_GT(r.joinable_tables, 0u);
  EXPECT_EQ(r.key_joinable_columns + r.nonkey_joinable_columns,
            r.joinable_columns);
  auto labeled = core::LabelJoinSample(*bundle_, finder, pairs);
  EXPECT_GT(labeled.size(), 0u);
}

TEST_F(SmokeTest, UnionPipeline) {
  core::UnionReport r = core::ComputeUnionReport(*bundle_);
  EXPECT_GT(r.unionable_tables, 0u);
  EXPECT_GT(r.unionable_schemas, 0u);
}

}  // namespace
}  // namespace ogdp
