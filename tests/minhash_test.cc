// Tests for MinHash signatures and the LSH-based approximate joinability
// search.

#include <gtest/gtest.h>

#include <set>

#include "join/minhash.h"
#include "table/table.h"
#include "util/rng.h"

namespace ogdp::join {
namespace {

using table::Table;

Table OneColumn(const std::string& name, const std::vector<int>& values) {
  std::vector<std::vector<std::string>> rows;
  for (int v : values) rows.push_back({std::to_string(v)});
  auto t = Table::FromRecords(name, {"v"}, rows);
  return std::move(t).value();
}

std::vector<int> Range(int lo, int hi) {
  std::vector<int> out;
  for (int i = lo; i <= hi; ++i) out.push_back(i);
  return out;
}

TEST(MinHashTest, IdenticalSetsAgreeEverywhere) {
  MinHashOptions options;
  std::vector<uint32_t> tokens = {1, 5, 9, 200, 7};
  auto a = ComputeSignature(tokens, options);
  auto b = ComputeSignature(tokens, options);
  EXPECT_DOUBLE_EQ(EstimateJaccard(a, b), 1.0);
}

TEST(MinHashTest, DisjointSetsAgreeNowhere) {
  MinHashOptions options;
  auto a = ComputeSignature({1, 2, 3, 4, 5}, options);
  auto b = ComputeSignature({100, 200, 300, 400}, options);
  EXPECT_LT(EstimateJaccard(a, b), 0.1);
}

TEST(MinHashTest, PartialFinalBandStaysInBounds) {
  // Regression for the LSH band loop: num_hashes=10, bands=3 gives
  // rows_per_band=3 and four bands, the last one partial. The pre-fix
  // loop hashed values[10] and values[11] — a heap out-of-bounds read
  // that fails this test under ASan (OGDP_SANITIZE=address).
  std::vector<Table> tables;
  tables.push_back(OneColumn("a", Range(0, 19)));
  tables.push_back(OneColumn("b", Range(0, 19)));
  tables.push_back(OneColumn("c", Range(100, 119)));
  JoinablePairFinder finder(tables);
  MinHashOptions options;
  options.num_hashes = 10;
  options.bands = 3;
  MinHashIndex index(finder, options);
  const auto pairs = index.FindCandidatePairs(0.0);
  // Identical columns share every band bucket, so a~b must be a
  // candidate no matter how the final band is clamped.
  bool found_clone_pair = false;
  for (const auto& p : pairs) {
    found_clone_pair |= p.a.table == 0 && p.b.table == 1;
  }
  EXPECT_TRUE(found_clone_pair);
}

TEST(MinHashTest, EstimateTracksTrueJaccardProperty) {
  // With 256 hashes the estimator's standard error is ~1/16; check a
  // generous +-0.15 envelope across random overlapping sets.
  MinHashOptions options;
  options.num_hashes = 256;
  Rng rng(404);
  for (int trial = 0; trial < 20; ++trial) {
    std::set<uint32_t> sa, sb;
    const size_t shared = 10 + rng.NextBounded(60);
    for (size_t i = 0; i < shared; ++i) {
      const uint32_t v = static_cast<uint32_t>(rng.NextBounded(10000));
      sa.insert(v);
      sb.insert(v);
    }
    for (size_t i = 0; i < rng.NextBounded(40); ++i) {
      sa.insert(static_cast<uint32_t>(10000 + rng.NextBounded(5000)));
    }
    for (size_t i = 0; i < rng.NextBounded(40); ++i) {
      sb.insert(static_cast<uint32_t>(20000 + rng.NextBounded(5000)));
    }
    std::vector<uint32_t> va(sa.begin(), sa.end());
    std::vector<uint32_t> vb(sb.begin(), sb.end());
    size_t inter = 0;
    for (uint32_t v : va) inter += sb.count(v);
    const double truth = static_cast<double>(inter) /
                         static_cast<double>(sa.size() + sb.size() - inter);
    const double estimate = EstimateJaccard(
        ComputeSignature(va, options), ComputeSignature(vb, options));
    EXPECT_NEAR(estimate, truth, 0.15);
  }
}

TEST(MinHashIndexTest, HighRecallOnExactPairs) {
  // Build a corpus where the exact finder reports known pairs and check
  // the LSH index recovers nearly all of them at the same threshold.
  std::vector<Table> tables;
  Rng rng(55);
  for (int t = 0; t < 40; ++t) {
    std::vector<int> values = Range(t / 4 * 100, t / 4 * 100 + 40);
    // Jitter a few values so Jaccards spread below/above threshold.
    for (size_t k = 0; k < rng.NextBounded(6); ++k) {
      values[rng.NextBounded(values.size())] = 100000 + t * 50 + k;
    }
    tables.push_back(OneColumn("t" + std::to_string(t), values));
  }
  JoinFinderOptions exact_options;
  exact_options.jaccard_threshold = 0.8;
  JoinablePairFinder finder(tables, exact_options);
  auto exact_pairs = finder.FindAllPairs();
  ASSERT_GT(exact_pairs.size(), 10u);

  MinHashOptions mh;
  mh.num_hashes = 256;
  mh.bands = 64;  // aggressive banding: high candidate recall
  MinHashIndex index(finder, mh);
  auto approx_pairs = index.FindCandidatePairs(0.7);  // estimator slack

  std::set<std::pair<ColumnRef, ColumnRef>> approx_set;
  for (const auto& p : approx_pairs) approx_set.insert({p.a, p.b});
  size_t recalled = 0;
  for (const auto& p : exact_pairs) {
    recalled += approx_set.count({p.a, p.b});
  }
  EXPECT_GT(static_cast<double>(recalled) /
                static_cast<double>(exact_pairs.size()),
            0.9);
}

TEST(MinHashIndexTest, DeterministicUnderSeed) {
  std::vector<Table> tables;
  tables.push_back(OneColumn("a", Range(1, 30)));
  tables.push_back(OneColumn("b", Range(1, 28)));
  JoinablePairFinder finder(tables);
  MinHashIndex i1(finder), i2(finder);
  auto p1 = i1.FindCandidatePairs(0.8);
  auto p2 = i2.FindCandidatePairs(0.8);
  EXPECT_EQ(p1.size(), p2.size());
}

}  // namespace
}  // namespace ogdp::join
