// Tests for unionability grouping, degrees, sampling, and UnionAll.

#include <gtest/gtest.h>

#include <set>

#include "table/table.h"
#include "union/union_labels.h"
#include "union/unionable_finder.h"

namespace ogdp::tunion {
namespace {

using table::Table;

Table MakeTable(const std::string& name, const std::string& dataset,
                const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows) {
  auto t = Table::FromRecords(name, header, rows);
  EXPECT_TRUE(t.ok());
  t->set_dataset_id(dataset);
  return std::move(t).value();
}

std::vector<Table> Corpus() {
  std::vector<Table> tables;
  // Set A: three tables, same schema, same dataset.
  for (int i = 0; i < 3; ++i) {
    tables.push_back(MakeTable("a" + std::to_string(i), "ds1",
                               {"year", "value"},
                               {{"2020", "1.5"}, {"2021", "2.5"}}));
  }
  // Set B: two tables, same schema, different datasets.
  tables.push_back(MakeTable("b0", "ds2", {"name", "count"},
                             {{"x", "1"}, {"y", "2"}}));
  tables.push_back(MakeTable("b1", "ds3", {"name", "count"},
                             {{"z", "3"}, {"w", "4"}}));
  // Loner: unique schema.
  tables.push_back(MakeTable("c", "ds4", {"alpha", "beta", "gamma"},
                             {{"1", "x", "2.0"}}));
  // Same names as set B but a different type for "count" -> not unionable
  // with B.
  tables.push_back(MakeTable("d", "ds5", {"name", "count"},
                             {{"x", "1.5"}, {"y", "2.5"}}));
  return tables;
}

TEST(UnionableFinderTest, GroupsBySchema) {
  std::vector<Table> tables = Corpus();
  UnionableFinder finder(tables);
  EXPECT_EQ(finder.unique_schema_count(), 4u);  // A, B, c, d
  ASSERT_EQ(finder.unionable_sets().size(), 2u);
  EXPECT_EQ(finder.unionable_table_count(), 5u);
  const auto& set_a = finder.unionable_sets()[0];
  EXPECT_EQ(set_a.tables.size(), 3u);
  EXPECT_TRUE(set_a.single_dataset);
  const auto& set_b = finder.unionable_sets()[1];
  EXPECT_EQ(set_b.tables.size(), 2u);
  EXPECT_FALSE(set_b.single_dataset);
}

TEST(UnionableFinderTest, Degrees) {
  std::vector<Table> tables = Corpus();
  UnionableFinder finder(tables);
  EXPECT_EQ(finder.DegreeOf(0), 3u);
  EXPECT_EQ(finder.DegreeOf(3), 2u);
  EXPECT_EQ(finder.DegreeOf(5), 0u);  // loner
}

TEST(UnionableFinderTest, TypeDifferenceSplitsSchemas) {
  std::vector<Table> tables = Corpus();
  UnionableFinder finder(tables);
  // Table "d" (decimal count) must not be in set B (integer count).
  for (const auto& set : finder.unionable_sets()) {
    for (size_t t : set.tables) {
      EXPECT_NE(tables[t].name(), "d");
    }
  }
}

TEST(SampleUnionablePairsTest, DistinctPairsFromSets) {
  std::vector<Table> tables = Corpus();
  UnionableFinder finder(tables);
  auto samples = SampleUnionablePairs(finder, 4, 17);
  EXPECT_EQ(samples.size(), 4u);  // 3 pairs in A + 1 in B = exactly 4
  std::set<std::pair<size_t, size_t>> seen;
  for (const auto& s : samples) {
    EXPECT_LT(s.table_a, s.table_b);
    EXPECT_TRUE(seen.insert({s.table_a, s.table_b}).second);
    // Both members share the set's schema.
    EXPECT_TRUE(tables[s.table_a].GetSchema().EquivalentTo(
        tables[s.table_b].GetSchema()));
  }
}

TEST(SampleUnionablePairsTest, EmptyCorpus) {
  std::vector<Table> tables;
  UnionableFinder finder(tables);
  EXPECT_TRUE(SampleUnionablePairs(finder, 10, 1).empty());
}

// Regression: requesting at least the exact distinct-pair count must
// return every pair. The old rejection sampler could stall before
// exhausting a small pair space; the enumerate-and-shuffle path cannot.
TEST(SampleUnionablePairsTest, RequestingAllPairsReturnsAllPairs) {
  std::vector<Table> tables = Corpus();
  UnionableFinder finder(tables);
  for (uint64_t seed : {1u, 17u, 999u}) {
    auto samples = SampleUnionablePairs(finder, 100, seed);
    EXPECT_EQ(samples.size(), 4u) << "seed " << seed;  // 3 in A + 1 in B
    std::set<std::pair<size_t, size_t>> seen;
    for (const auto& s : samples) {
      EXPECT_TRUE(seen.insert({s.table_a, s.table_b}).second);
      EXPECT_EQ(finder.unionable_sets()[s.set_index].schema_fingerprint,
                tables[s.table_a].GetSchema().Fingerprint());
    }
  }
  // Overflow probe: with the old `count * 200` attempt cap this count
  // wrapped to exactly zero attempts and returned nothing.
  auto all = SampleUnionablePairs(finder, size_t{1} << 61, 7);
  EXPECT_EQ(all.size(), 4u);

  // Deterministic: the same seed yields the same sample order.
  auto a = SampleUnionablePairs(finder, 3, 42);
  auto b = SampleUnionablePairs(finder, 3, 42);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].table_a, b[i].table_a);
    EXPECT_EQ(a[i].table_b, b[i].table_b);
    EXPECT_EQ(a[i].set_index, b[i].set_index);
  }
}

TEST(UnionableFinderTest, AllCleanEpochCarriesEveryPartition) {
  std::vector<Table> tables = Corpus();
  UnionableFinder prev(tables);
  EXPECT_EQ(prev.partitions_carried(), 0u);  // from-scratch build
  EXPECT_EQ(prev.partitions_patched(), 0u);
  const UnionGroupingState state = prev.grouping_state();

  // Next epoch: identical corpus, every table claimed clean in place.
  std::vector<size_t> prev_to_new(tables.size());
  for (size_t i = 0; i < tables.size(); ++i) prev_to_new[i] = i;
  std::vector<uint8_t> dirty(tables.size(), 0);
  UnionableFinder inc(tables, nullptr, nullptr, &state, &prev_to_new, &dirty);

  EXPECT_EQ(inc.partitions_carried(), prev.unique_schema_count());
  EXPECT_EQ(inc.partitions_patched(), 0u);
  EXPECT_EQ(inc.grouping_state().members_by_fp, state.members_by_fp);
  ASSERT_EQ(inc.unionable_sets().size(), prev.unionable_sets().size());
  for (size_t s = 0; s < inc.unionable_sets().size(); ++s) {
    EXPECT_EQ(inc.unionable_sets()[s].tables, prev.unionable_sets()[s].tables);
    EXPECT_EQ(inc.unionable_sets()[s].schema_fingerprint,
              prev.unionable_sets()[s].schema_fingerprint);
  }
}

TEST(UnionableFinderTest, IncrementalRegroupMatchesFromScratch) {
  // Epoch 1 groups Corpus(); epoch 2 drops a1 and d, edits b1, adds a
  // new member of A's schema, and permutes the surviving indices. The
  // incremental regroup must be byte-identical to a from-scratch build
  // over the new corpus, with only the touched partitions re-derived.
  std::vector<Table> prev_tables = Corpus();
  UnionableFinder prev(prev_tables);
  const UnionGroupingState state = prev.grouping_state();

  std::vector<Table> next;
  next.push_back(MakeTable("b1", "ds3", {"name", "count"},  // edited rows
                           {{"z", "3"}, {"w", "4"}, {"v", "5"}}));
  next.push_back(prev_tables[0]);  // a0, clean
  next.push_back(prev_tables[2]);  // a2, clean
  next.push_back(MakeTable("a3", "ds1", {"year", "value"},  // new in A
                           {{"2020", "3.5"}, {"2021", "4.5"}}));
  next.push_back(prev_tables[3]);  // b0, clean
  next.push_back(prev_tables[5]);  // c, clean

  constexpr size_t npos = static_cast<size_t>(-1);
  // prev index -> new index for clean carries; edited/removed unclaimed.
  const std::vector<size_t> prev_to_new = {1, npos, 2, 4, npos, 5, npos};
  const std::vector<uint8_t> dirty = {1, 0, 0, 1, 0, 0};

  UnionableFinder inc(next, nullptr, nullptr, &state, &prev_to_new, &dirty);
  UnionableFinder scratch(next);

  EXPECT_EQ(inc.grouping_state().members_by_fp,
            scratch.grouping_state().members_by_fp);
  EXPECT_EQ(inc.unique_schema_count(), scratch.unique_schema_count());
  EXPECT_EQ(inc.unionable_table_count(), scratch.unionable_table_count());
  ASSERT_EQ(inc.unionable_sets().size(), scratch.unionable_sets().size());
  for (size_t s = 0; s < inc.unionable_sets().size(); ++s) {
    EXPECT_EQ(inc.unionable_sets()[s].tables,
              scratch.unionable_sets()[s].tables);
    EXPECT_EQ(inc.unionable_sets()[s].schema_fingerprint,
              scratch.unionable_sets()[s].schema_fingerprint);
    EXPECT_EQ(inc.unionable_sets()[s].single_dataset,
              scratch.unionable_sets()[s].single_dataset);
  }
  for (size_t t = 0; t < next.size(); ++t) {
    EXPECT_EQ(inc.DegreeOf(t), scratch.DegreeOf(t)) << "table " << t;
  }

  // Only c's partition survives untouched; A (member added + a1 gone)
  // and B (b1 edited + reinserted) are patched; d's partition vanished.
  EXPECT_EQ(inc.partitions_carried(), 1u);
  EXPECT_EQ(inc.partitions_patched(), 2u);
  EXPECT_EQ(inc.partitions_carried() + inc.partitions_patched(),
            inc.unique_schema_count());
}

TEST(UnionAllTest, ConcatenatesRows) {
  std::vector<Table> tables = Corpus();
  UnionableFinder finder(tables);
  const auto& set_a = finder.unionable_sets()[0];
  Table u = UnionAll(tables, set_a.tables, "union_a");
  EXPECT_EQ(u.num_rows(), 6u);
  EXPECT_EQ(u.num_columns(), 2u);
  EXPECT_EQ(u.column(0).name(), "year");
  EXPECT_EQ(u.column(0).distinct_count(), 2u);  // 2020, 2021 repeated
}

TEST(UnionLabelsTest, Names) {
  EXPECT_STREQ(UnionLabelName(UnionLabel::kUseful), "useful");
  EXPECT_STREQ(UnionLabelName(UnionLabel::kAccidental), "accidental");
  EXPECT_STREQ(UnionPatternName(UnionPattern::kPeriodic), "periodic");
  EXPECT_STREQ(UnionPatternName(UnionPattern::kDuplicateTable),
               "duplicate_table");
}

}  // namespace
}  // namespace ogdp::tunion
